"""``repro report``: fuse one recorded run into a single diagnostic artifact.

Reads the files an observability run leaves behind (``telemetry.jsonl``,
``metrics.json``, ``trace.json``) plus the benchmark trajectory
(``bench_results/*.json`` and the committed ``BENCH_*.json`` baselines)
and renders one self-contained markdown — or, with inline CSS, HTML —
document: run summary, health verdict with every alert, training
trajectory, query-plan statistics, estimator calibration, metrics
tables, the hottest trace spans, and the bench trajectory with its
provenance. No network access, no dependencies beyond the stdlib.

Health alerts are *re-derived* by replaying the recorded telemetry
through :mod:`repro.obs.health`, so reports work on runs recorded
before the monitor existed and always reflect the current rule pack.
"""

from __future__ import annotations

import glob
import json
import os
import re
from html import escape
from typing import Any, Optional, Sequence

from . import (
    CHROME_TRACE_FILE,
    FLAMEGRAPH_FILE,
    MEMORY_FILE,
    METRICS_FILE,
    PROFILE_COLLAPSED_FILE,
    QUALITY_FILE,
    SLO_FILE,
    TELEMETRY_FILE,
    TRACE_FILE,
)
from . import health as health_mod
from . import profiler as profiler_mod
from . import telemetry as telemetry_mod

#: How many trailing entries the tables show.
_LAST_UPDATES = 10
_LAST_PLANS = 3
_TOP_SPANS = 12


# ------------------------------------------------------------------ #
# markdown building blocks
# ------------------------------------------------------------------ #
def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value).replace("|", "\\|")  # keep pipes out of the grid

    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def _load_json(path: str) -> Optional[Any]:
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


# ------------------------------------------------------------------ #
# sections
# ------------------------------------------------------------------ #
def _section_summary(
    run_dir: str,
    records: list[dict],
    monitor: health_mod.HealthMonitor,
) -> list[str]:
    updates = [r for r in records if r.get("stream") == "train.update"]
    queries = [r for r in records if r.get("stream") == "query"]
    plans = [r for r in records if r.get("stream") == "plan"]
    counts = monitor.counts()
    verdict = monitor.worst_severity() or "HEALTHY"
    lines = [
        "## Run summary",
        "",
        f"- run directory: `{run_dir}`",
        f"- health verdict: **{verdict}** "
        f"({counts.get('CRIT', 0)} CRIT, {counts.get('WARN', 0)} WARN)",
        f"- telemetry records: {len(records)} "
        f"({len(updates)} training updates, {len(queries)} queries, "
        f"{len(plans)} captured plans)",
    ]
    present = [
        name
        for name in (
            TELEMETRY_FILE,
            METRICS_FILE,
            TRACE_FILE,
            CHROME_TRACE_FILE,
            PROFILE_COLLAPSED_FILE,
            FLAMEGRAPH_FILE,
            MEMORY_FILE,
            SLO_FILE,
            QUALITY_FILE,
        )
        if os.path.exists(os.path.join(run_dir, name))
    ]
    rotated = telemetry_mod.rotated_paths(os.path.join(run_dir, TELEMETRY_FILE))
    if len(rotated) > 1:
        lines.append(
            f"- telemetry sink rotated: {len(rotated)} files in the set"
        )
    lines.append(f"- artifacts read: {', '.join(f'`{p}`' for p in present)}")
    return lines


def _section_health(monitor: health_mod.HealthMonitor) -> list[str]:
    lines = ["## Health alerts", ""]
    if not monitor.alerts:
        lines.append("No alerts — every rule stayed inside its thresholds.")
        return lines
    rows = [
        [
            alert.severity,
            alert.rule,
            "-" if alert.iteration is None else alert.iteration,
            "-" if alert.value is None else f"{alert.value:.4g}",
            "-" if alert.threshold is None else f"{alert.threshold:.4g}",
            alert.message,
        ]
        for alert in monitor.alerts
    ]
    lines.append(_md_table(
        ["severity", "rule", "iter", "value", "threshold", "message"], rows
    ))
    return lines


def _section_training(records: list[dict]) -> list[str]:
    updates = [r for r in records if r.get("stream") == "train.update"]
    lines = ["## Training trajectory", ""]
    if not updates:
        lines.append("No `train.update` records in this run.")
        return lines
    rewards = [float(u.get("mean_episode_reward", 0.0)) for u in updates]
    if len(rewards) >= 2:
        from ..bench.reporting import ascii_chart

        lines += [
            "```",
            ascii_chart(
                {"mean_episode_reward": rewards},
                [u.get("iteration", i) for i, u in enumerate(updates)],
                title="mean episode reward per iteration",
            ),
            "```",
            "",
        ]
    tail = updates[-_LAST_UPDATES:]
    lines.append(_md_table(
        ["iter", "reward", "kl", "entropy", "clip%", "expl.var", "grad norm"],
        [
            [
                u.get("iteration"),
                float(u.get("mean_episode_reward", 0.0)),
                float(u.get("kl_divergence", 0.0)),
                float(u.get("entropy", 0.0)),
                100.0 * float(u.get("clip_fraction", 0.0)),
                float(u.get("explained_variance", 0.0)),
                float(u.get("grad_norm", 0.0)),
            ]
            for u in tail
        ],
    ))
    return lines


def _section_plans(records: list[dict]) -> list[str]:
    plans = [r for r in records if r.get("stream") == "plan"]
    lines = ["## Query plans", ""]
    if not plans:
        lines.append(
            "No captured plans — record some with "
            "`repro explain \"<sql>\" --analyze --telemetry <dir>`."
        )
        return lines
    for record in plans[-_LAST_PLANS:]:
        max_q = record.get("max_q_error")
        lines += [
            f"### `{record.get('sql', '?')}`",
            "",
            f"total {1e3 * float(record.get('total_seconds') or 0.0):.2f} ms, "
            f"max q-error {max_q if max_q is not None else 'n/a'}",
            "",
            _md_table(
                ["operator", "label", "est rows", "act rows", "q-error", "ms"],
                [
                    [
                        op.get("op"),
                        op.get("label", ""),
                        op.get("estimated_rows", "-"),
                        op.get("actual_rows", "-"),
                        op.get("q_error", "-"),
                        (
                            f"{1e3 * float(op['seconds']):.2f}"
                            if op.get("seconds") is not None
                            else "-"
                        ),
                    ]
                    for op in record.get("operators", [])
                ],
            ),
            "",
        ]
    return lines


def _section_queries(records: list[dict]) -> list[str]:
    queries = [r for r in records if r.get("stream") == "query"]
    lines = ["## Queries & estimator calibration", ""]
    if not queries:
        lines.append("No routed queries in this run.")
        return lines
    approx = sum(1 for q in queries if q.get("used_approximation"))
    errors = [
        abs(float(q["confidence"]) - float(q["realized_frame_score"]))
        for q in queries
        if q.get("confidence") is not None
        and q.get("realized_frame_score") is not None
    ]
    drifts = sum(1 for q in queries if q.get("drift"))
    lines += [
        f"- {len(queries)} queries: {approx} answered from the approximation "
        f"set, {len(queries) - approx} from the full database",
        f"- mean |confidence − realized frame score|: "
        f"{(sum(errors) / len(errors)):.3f}" if errors else
        "- no calibration pairs recorded",
        f"- drift events observed: {drifts}",
    ]
    return lines


#: Predicted-confidence bins for the audit calibration table.
_CALIBRATION_BINS = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.01))


def _section_quality(
    records: list[dict], quality_doc: Optional[dict]
) -> list[str]:
    """Answer quality: shadow audits, calibration, and drift.

    Per-audit rows come from the recorded ``quality`` telemetry stream
    (one record per shadow audit, trace-stamped); the run-level
    accounting comes from ``quality.json``. When neither exists the
    section says so explicitly — a run without ground-truth audits
    should read as "unverified", not render as silently healthy.
    """
    quality_records = [r for r in records if r.get("stream") == "quality"]
    audits = [r for r in quality_records if r.get("kind") == "audit"]
    drifts = [
        r for r in quality_records if r.get("kind") == "calibration_drift"
    ]
    lines = ["## Answer quality", ""]
    if not quality_records and not quality_doc:
        lines.append(
            "No audit data recorded in this run — answer quality is "
            "unverified. Enable shadow auditing with `repro audit "
            "--smoke`, `obs.run(audit_rate=...)`, or `REPRO_AUDIT_RATE`."
        )
        return lines
    counts = (quality_doc or {}).get("counts", {})
    if counts:
        lines.append(
            f"- {counts.get('queries', 0)} queries observed "
            f"({counts.get('approx_queries', 0)} served from the "
            f"approximation set), {counts.get('audits', 0)} shadow-audited "
            f"({counts.get('skipped_coin', 0)} skipped by the sampling "
            f"coin, {counts.get('skipped_budget', 0)} by the overhead "
            "budget)"
        )
        overhead = quality_doc.get("overhead_fraction")
        if overhead is not None:
            budget = quality_doc.get("max_overhead")
            lines.append(
                f"- audit overhead: {float(overhead):.2%} of serving time "
                f"(sample rate {quality_doc.get('sample_rate', '?')}, "
                f"budget "
                f"{f'{float(budget):.0%}' if budget is not None else 'unbounded'})"
            )
        recall = quality_doc.get("mean_recall")
        if recall is not None:
            agg = quality_doc.get("mean_agg_rel_error")
            agg_note = (
                f", mean aggregate relative error {float(agg):.3f}"
                if agg is not None
                else ""
            )
            lines.append(
                f"- audited recall: mean {float(recall):.3f}{agg_note}; "
                f"{counts.get('low_quality', 0)} low-quality answers"
            )
        bias = quality_doc.get("calibration_bias")
        if bias is not None:
            lines.append(
                f"- calibration bias (predicted − observed): "
                f"{float(bias):+.3f} over the rolling window; "
                f"{counts.get('drift_events', 0)} drift escalations"
            )
    for record in drifts[-2:]:
        lines.append(
            f"- **calibration drift ({record.get('severity', '?')})**: "
            f"bias {float(record.get('bias', 0.0)):+.2f} over "
            f"{record.get('window', '?')} approximation answers"
        )
    pairs = [
        (float(r["predicted"]), float(r["observed"]), float(r["recall"]))
        for r in audits
        if r.get("predicted") is not None
        and r.get("observed") is not None
        and r.get("recall") is not None
    ]
    if pairs:
        lines += ["", "### Calibration (predicted vs audited)", ""]
        rows = []
        for low, high in _CALIBRATION_BINS:
            binned = [p for p in pairs if low <= p[0] < high]
            if not binned:
                continue
            mean_pred = sum(p[0] for p in binned) / len(binned)
            mean_obs = sum(p[1] for p in binned) / len(binned)
            mean_recall = sum(p[2] for p in binned) / len(binned)
            rows.append([
                f"[{low:.2f}, {min(high, 1.0):.2f})",
                len(binned),
                f"{mean_pred:.3f}",
                f"{mean_obs:.3f}",
                f"{mean_recall:.3f}",
                f"{mean_pred - mean_obs:+.3f}",
            ])
        lines.append(_md_table(
            [
                "predicted bin", "audits", "mean predicted",
                "mean observed", "mean recall", "bias",
            ],
            rows,
        ))
    elif not counts:
        lines.append(
            "Quality telemetry present but no completed audits — the "
            "sampling coin or the overhead budget skipped every candidate."
        )
    worst = sorted(
        audits,
        key=lambda r: float(r.get("recall", 1.0)),
    )[:5]
    if worst:
        lines += ["", "### Worst audited answers", ""]
        lines.append(_md_table(
            ["trace", "recall", "agg rel err", "predicted", "sql"],
            [
                [
                    f"`{str(r.get('trace_id', '?'))[:16]}`",
                    f"{float(r.get('recall', 0.0)):.3f}",
                    (
                        f"{float(r['agg_rel_error']):.3f}"
                        if r.get("agg_rel_error") is not None
                        else "-"
                    ),
                    f"{float(r.get('predicted', 0.0)):.3f}",
                    f"`{str(r.get('sql', ''))[:60]}`",
                ]
                for r in worst
            ],
        ))
        lines += [
            "",
            "Resolve a trace with `repro analyze --trace <id>`.",
        ]
    return lines


def _section_storage(
    snapshot: Optional[dict], records: Optional[list[dict]] = None
) -> list[str]:
    """Zone-map pruning and morsel-parallelism counters, interpreted.

    With telemetry records available, also attributes serial fallbacks
    to their reasons and summarizes per-worker busy time / skew from the
    per-query ``parallel`` stream (the worker-lane half of DESIGN.md
    §11).
    """
    lines = ["## Column store & parallel execution", ""]
    counters = (snapshot or {}).get("counters", {})
    histograms = (snapshot or {}).get("histograms", {})
    blocks_total = counters.get("scan.blocks_total", 0)
    blocks_pruned = counters.get("scan.blocks_pruned", 0)
    dispatches = counters.get("parallel.dispatches", 0)
    fallbacks = counters.get("parallel.fallbacks", 0)
    morsels = histograms.get("parallel.morsels")
    if not blocks_total and not dispatches and not fallbacks:
        lines.append(
            "No scan/parallel metrics in this run — they appear once "
            "queries execute against zone-mapped tables (and, for the "
            "parallel rows, with `REPRO_WORKERS` >= 2)."
        )
        return lines
    if blocks_total:
        lines.append(
            f"- zone-map pruning: {blocks_pruned:.0f} of {blocks_total:.0f} "
            f"scan blocks skipped ({blocks_pruned / blocks_total:.1%})"
        )
    if dispatches:
        rows = counters.get("parallel.rows", 0)
        lines.append(
            f"- parallel dispatches: {dispatches:.0f} "
            f"({rows:.0f} rows through the worker pool), "
            f"{fallbacks:.0f} serial fallbacks"
        )
    elif fallbacks:
        lines.append(
            f"- parallel execution: 0 dispatches, {fallbacks:.0f} serial "
            "fallbacks (pool unavailable or inputs below the morsel floor)"
        )
    reason_counts = {
        name[len("parallel.fallbacks."):]: count
        for name, count in counters.items()
        if name.startswith("parallel.fallbacks.")
    }
    if reason_counts:
        reasons = ", ".join(
            f"{reason} ×{count:.0f}"
            for reason, count in sorted(reason_counts.items())
        )
        lines.append(f"- fallback reasons: {reasons}")
    if morsels:
        lines.append(
            f"- morsels per dispatch: mean {morsels.get('mean', 0):.1f}, "
            f"p95 {morsels.get('p95', 0):.0f}, max {morsels.get('max', 0):.0f}"
        )
    task_seconds = histograms.get("parallel.worker.task.seconds")
    if task_seconds and task_seconds.get("count"):
        lines.append(
            f"- worker tasks: {task_seconds['count']} "
            f"(p50 {task_seconds.get('p50', 0) * 1e3:.2f} ms, "
            f"p95 {task_seconds.get('p95', 0) * 1e3:.2f} ms, "
            f"max {task_seconds.get('max', 0) * 1e3:.2f} ms busy)"
        )
    skew = histograms.get("parallel.query.skew_ratio")
    if skew and skew.get("count"):
        stragglers = counters.get("parallel.stragglers", 0)
        lines.append(
            f"- worker skew (max/mean busy per query): "
            f"mean {skew.get('mean', 0):.2f}, max {skew.get('max', 0):.2f}; "
            f"{stragglers:.0f} straggler tasks"
        )
    watchdog = counters.get("parallel.watchdog.timeouts", 0)
    if watchdog:
        lines.append(
            f"- **watchdog**: {watchdog:.0f} hung dispatch(es) cancelled; "
            "the pool was recycled and the queries completed serially"
        )
    parallel_queries = [
        record
        for record in records or []
        if record.get("stream") == "parallel" and record.get("event") == "query"
    ]
    if parallel_queries:
        last = parallel_queries[-1]
        busy = last.get("worker_busy") or {}
        if busy:
            rows_out = [
                (pid, f"{seconds * 1e3:.2f}")
                for pid, seconds in sorted(busy.items())
            ]
            lines.append("")
            lines.append(
                f"Last parallel query (`{last.get('query')}`): "
                f"{last.get('morsels', 0)} morsels over {len(busy)} workers, "
                f"skew {last.get('skew_ratio', 1.0):.2f}."
            )
            lines.append("")
            lines.append(_md_table(["worker pid", "busy ms"], rows_out))
    return lines


def _section_metrics(snapshot: Optional[dict]) -> list[str]:
    lines = ["## Metrics", ""]
    if not snapshot:
        lines.append("No `metrics.json` in this run.")
        return lines
    scalars = sorted(
        {**snapshot.get("counters", {}), **snapshot.get("gauges", {})}.items()
    )
    if scalars:
        lines.append(_md_table(["counter / gauge", "value"], scalars))
        lines.append("")
    histograms = sorted(snapshot.get("histograms", {}).items())
    if histograms:
        lines.append(_md_table(
            ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
            [
                [
                    name,
                    h.get("count"),
                    h.get("mean"),
                    h.get("p50"),
                    h.get("p95"),
                    h.get("p99"),
                    h.get("max"),
                ]
                for name, h in histograms
            ],
        ))
    return lines


def _aggregate_spans(nodes: list[dict]) -> dict[str, tuple[int, float]]:
    totals: dict[str, tuple[int, float]] = {}
    stack = list(nodes)
    while stack:
        node = stack.pop()
        count, seconds = totals.get(node.get("name", "?"), (0, 0.0))
        totals[node.get("name", "?")] = (
            count + 1,
            seconds + float(node.get("seconds", 0.0)),
        )
        stack.extend(node.get("children", []))
    return totals


def _section_trace(nodes: Optional[list]) -> list[str]:
    lines = ["## Hottest spans", ""]
    if not nodes:
        lines.append("No `trace.json` in this run.")
        return lines
    totals = _aggregate_spans(nodes)
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])[:_TOP_SPANS]
    lines.append(_md_table(
        ["span", "count", "total ms"],
        [[name, count, 1e3 * seconds] for name, (count, seconds) in ranked],
    ))
    return lines


def _section_slowest_traces(run_dir: str) -> list[str]:
    """Top retained traces with their critical paths (tail sampler)."""
    # Imported lazily: analyze pulls artifact-name constants from this
    # package, so an eager import would cycle.
    from . import analyze as analyze_mod

    lines = ["## Slowest traces", ""]
    entries = analyze_mod.load_traces(run_dir)
    if not entries:
        lines.append(
            "No retained traces in this run — record one with "
            "observability enabled (`repro explain --analyze "
            "--telemetry DIR`)."
        )
        return lines
    rows = []
    for entry in analyze_mod.slowest(entries, 5):
        path = analyze_mod.critical_path(
            entry.get("root") or {}, entry.get("worker_spans") or []
        )
        hottest = max(path, key=lambda row: row.get("self_s", 0.0)) if path else {}
        pids = analyze_mod.worker_pids(entry)
        rows.append([
            f"`{str(entry.get('trace_id', '?'))[:16]}`",
            1e3 * float(entry.get("duration_s", 0.0)),
            entry.get("reason", "?"),
            len(pids),
            hottest.get("name", "-"),
            1e3 * float(hottest.get("self_s", 0.0)),
        ])
    lines.append(_md_table(
        ["trace", "total ms", "kept", "workers", "critical span", "self ms"],
        rows,
    ))
    summary = analyze_mod.sampler_summary(run_dir)
    counts = (summary or {}).get("counts") or {}
    if counts:
        kept = sum(v for k, v in counts.items() if k.startswith("kept_"))
        lines += [
            "",
            f"Tail sampler: {counts.get('offered', 0)} traces offered, "
            f"{kept} kept, {counts.get('dropped_head', 0)} head-dropped, "
            f"{counts.get('evicted', 0)} evicted. Inspect one with "
            "`repro analyze --trace <id>`.",
        ]
    return lines


def _section_slo(slo_doc: Optional[dict]) -> list[str]:
    lines = ["## Service-level objectives", ""]
    if not slo_doc or not slo_doc.get("objectives"):
        lines.append(
            "No `slo.json` in this run — record one with "
            "`repro profile <command>` or `obs.run(slo_objectives=...)`."
        )
        return lines
    lines += [
        f"Windows: {slo_doc.get('window')} samples slow / "
        f"{slo_doc.get('fast_window')} fast; alert when both burn ≥ "
        f"{slo_doc.get('warn_burn_rate')}x (WARN) / "
        f"{slo_doc.get('crit_burn_rate')}x (CRIT).",
        "",
    ]
    rows = []
    for status in slo_doc["objectives"]:
        value = status.get("value")
        rows.append([
            status.get("spec"),
            "-" if value is None else f"{value:.4g}",
            status.get("n_samples", 0),
            "ok" if status.get("ok") else "VIOLATED",
            f"{status.get('burn_rate', 0.0):.1f}x"
            if status.get("kind") != "gauge" else "-",
            status.get("severity") or "-",
        ])
    lines.append(_md_table(
        ["objective", "value", "samples", "status", "burn", "severity"], rows
    ))
    return lines


def _section_profile(
    run_dir: str,
    counts: Optional[dict],
    memory_doc: Optional[dict],
) -> list[str]:
    lines = ["## CPU & memory profile", ""]
    if not counts and not memory_doc:
        lines.append(
            "No profile in this run — record one with "
            "`repro profile <command>`."
        )
        return lines
    if counts:
        total = sum(counts.values())
        lines.append(
            f"{total} samples across {len(counts)} unique stacks — "
            f"interactive view: `{os.path.join(run_dir, FLAMEGRAPH_FILE)}`"
        )
        lines.append("")
        hot = profiler_mod.hot_functions_of(counts, n=_TOP_SPANS)
        if hot:
            lines.append("### Hot functions (self time)")
            lines.append("")
            lines.append(_md_table(
                ["frame", "samples", "share"],
                [
                    [frame, samples, f"{fraction:.1%}"]
                    for frame, samples, fraction in hot
                ],
            ))
            lines.append("")
        spans = sorted(
            profiler_mod.span_samples_of(counts).items(), key=lambda kv: -kv[1]
        )
        if spans:
            lines.append("### Samples by enclosing span")
            lines.append("")
            lines.append(_md_table(
                ["span", "samples", "share"],
                [
                    [name, samples, f"{samples / total:.1%}"]
                    for name, samples in spans[:_TOP_SPANS]
                ],
            ))
            lines.append("")
    if memory_doc:
        lines.append("### Memory (tracemalloc)")
        lines.append("")
        lines.append(
            f"- traced: {memory_doc.get('current_kb', 0.0):.0f} KiB current, "
            f"{memory_doc.get('peak_kb', 0.0):.0f} KiB peak; "
            f"RSS {memory_doc.get('rss_kb', 0.0):.0f} KiB"
        )
        suspects = [
            check
            for check in (memory_doc.get("epochs") or {}).values()
            if check.get("suspect")
        ]
        if suspects:
            for check in suspects:
                lines.append(
                    f"- **leak suspect**: phase `{check['phase']}` grew "
                    f"monotonically over its trailing epochs "
                    f"({check.get('growth_bytes', 0)} bytes)"
                )
        elif memory_doc.get("epochs"):
            lines.append(
                f"- leak check: {len(memory_doc['epochs'])} phases, "
                "no monotone growth"
            )
        top = memory_doc.get("growth_since_start") or memory_doc.get(
            "top_allocators"
        )
        if top:
            lines.append("")
            lines.append(_md_table(
                ["allocation site", "KiB", "blocks"],
                [
                    [row.get("site"), row.get("size_kb"), row.get("count")]
                    for row in top[:10]
                ],
            ))
    return lines


def _load_profile_counts(run_dir: str) -> Optional[dict]:
    path = os.path.join(run_dir, PROFILE_COLLAPSED_FILE)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return profiler_mod.parse_collapsed(handle.read())


def _section_bench(bench_dir: Optional[str]) -> list[str]:
    from ..bench.reporting import results_dir

    directory = bench_dir or results_dir()
    lines = ["## Bench trajectory", ""]
    rows = []
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        record = _load_json(path)
        if not isinstance(record, dict):
            continue
        provenance = record.get("provenance", {})
        rows.append([
            record.get("experiment", os.path.basename(path)),
            record.get("timestamp", "-"),
            provenance.get("git_sha", "-"),
            provenance.get("bench_scale", "-"),
            provenance.get("duration_seconds", "-"),
        ])
    if rows:
        lines.append(_md_table(
            ["experiment", "timestamp", "git sha", "scale", "duration s"], rows
        ))
        lines.append("")
    else:
        lines.append(f"No recorded experiments under `{directory}/`.")
        lines.append("")

    baselines = sorted(glob.glob("BENCH_*.json"))
    for path in baselines:
        record = _load_json(path)
        if not isinstance(record, dict) or "kernels" not in record:
            continue
        lines.append(f"### Kernel baseline `{path}`")
        lines.append("")
        lines.append(_md_table(
            ["kernel", "vectorized s", "speedup", "units / s"],
            [
                [
                    name,
                    entry.get("vectorized_s"),
                    entry.get("speedup"),
                    entry.get("units_per_s"),
                ]
                for name, entry in sorted(record["kernels"].items())
            ],
        ))
        lines.append("")
    return lines


# ------------------------------------------------------------------ #
# assembly
# ------------------------------------------------------------------ #
def _merge_recorded_slo_alerts(
    monitor: health_mod.HealthMonitor, records: list[dict]
) -> None:
    """Fold recorded SLO alerts into a replayed monitor.

    :func:`health_mod.replay` re-derives the *training/calibration* rules
    from the raw streams, but burn-rate alerts depend on the rolling
    sample windows of the live run — they cannot be re-derived, so the
    recorded ``health`` stream is authoritative for them. Quality
    calibration-drift alerts are *not* merged: :func:`health_mod.replay`
    re-derives them from the recorded ``quality`` stream, so folding the
    recorded health records in as well would double-count each one.
    """
    recorded = [
        health_mod.Alert(
            severity=str(record.get("severity", health_mod.WARN)),
            rule=str(record.get("rule", "slo")),
            message=str(record.get("message", "")),
            value=record.get("value"),
            threshold=record.get("threshold"),
        )
        for record in records
        if record.get("stream") == "health"
        and str(record.get("rule", "")).startswith("slo")
    ]
    if recorded:
        monitor.publish(recorded)


def render_markdown(run_dir: str, bench_dir: Optional[str] = None) -> str:
    """The full report as one markdown document."""
    telemetry_path = os.path.join(run_dir, TELEMETRY_FILE)
    records = telemetry_mod.load_run(telemetry_path)
    monitor = health_mod.replay(records)
    _merge_recorded_slo_alerts(monitor, records)
    snapshot = _load_json(os.path.join(run_dir, METRICS_FILE))
    nodes = _load_json(os.path.join(run_dir, TRACE_FILE))
    slo_doc = _load_json(os.path.join(run_dir, SLO_FILE))
    memory_doc = _load_json(os.path.join(run_dir, MEMORY_FILE))
    quality_doc = _load_json(os.path.join(run_dir, QUALITY_FILE))
    profile_counts = _load_profile_counts(run_dir)

    sections = [
        ["# repro diagnostic report", ""],
        _section_summary(run_dir, records, monitor),
        _section_health(monitor),
        _section_slo(slo_doc),
        _section_training(records),
        _section_plans(records),
        _section_queries(records),
        _section_quality(records, quality_doc),
        _section_storage(snapshot, records),
        _section_metrics(snapshot),
        _section_trace(nodes),
        _section_slowest_traces(run_dir),
        _section_profile(run_dir, profile_counts, memory_doc),
        _section_bench(bench_dir),
    ]
    return "\n".join("\n".join(section) + "\n" for section in sections)


_HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       max-width: 64rem; margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
h2 { border-bottom: 1px solid #c9cad9; padding-bottom: .2rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .9rem; }
th, td { border: 1px solid #c9cad9; padding: .25rem .6rem; text-align: left; }
th { background: #f2f2f7; }
code { background: #f2f2f7; padding: .1rem .3rem; border-radius: 3px; }
pre { background: #f6f8fa; padding: .8rem; overflow-x: auto;
      border-radius: 6px; line-height: 1.2; }
pre code { background: none; padding: 0; }
"""


def _inline_html(text: str) -> str:
    """Escape one markdown text run, rendering `code` spans and **bold**."""
    out: list[str] = []
    pos = 0
    while pos < len(text):
        if text[pos] == "`":
            end = text.find("`", pos + 1)
            if end > pos:
                out.append(f"<code>{escape(text[pos + 1:end])}</code>")
                pos = end + 1
                continue
        if text.startswith("**", pos):
            end = text.find("**", pos + 2)
            if end > pos:
                out.append(f"<strong>{escape(text[pos + 2:end])}</strong>")
                pos = end + 2
                continue
        out.append(escape(text[pos]))
        pos += 1
    return "".join(out)


def markdown_to_html(markdown: str, title: str = "repro report") -> str:
    """A deliberately small markdown → HTML renderer.

    Covers exactly what :func:`render_markdown` emits — headings, pipe
    tables, fenced code blocks, bullet lists, paragraphs, inline code
    and bold — so the HTML artifact needs no external converter.
    """
    lines = markdown.splitlines()
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_HTML_CSS}</style>",
        "</head><body>",
    ]
    i = 0
    in_list = False

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            out.append("</ul>")
            in_list = False

    while i < len(lines):
        line = lines[i]
        if line.startswith("```"):
            close_list()
            block: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(lines[i])
                i += 1
            out.append("<pre><code>" + escape("\n".join(block)) + "</code></pre>")
            i += 1
            continue
        if line.startswith("|"):
            close_list()
            table: list[str] = []
            while i < len(lines) and lines[i].startswith("|"):
                table.append(lines[i])
                i += 1
            out.append("<table>")
            for r, row in enumerate(table):
                if r == 1:  # separator row
                    continue
                cells = [
                    c.strip().replace("\\|", "|")
                    for c in re.split(r"(?<!\\)\|", row.strip("|"))
                ]
                tag = "th" if r == 0 else "td"
                out.append(
                    "<tr>"
                    + "".join(f"<{tag}>{_inline_html(c)}</{tag}>" for c in cells)
                    + "</tr>"
                )
            out.append("</table>")
            continue
        if line.startswith("#"):
            close_list()
            level = len(line) - len(line.lstrip("#"))
            out.append(
                f"<h{level}>{_inline_html(line[level:].strip())}</h{level}>"
            )
        elif line.startswith("- "):
            if not in_list:
                out.append("<ul>")
                in_list = True
            out.append(f"<li>{_inline_html(line[2:])}</li>")
        elif line.strip():
            close_list()
            out.append(f"<p>{_inline_html(line)}</p>")
        else:
            close_list()
        i += 1
    close_list()
    out.append("</body></html>")
    return "\n".join(out)


def build_report(
    run_dir: str,
    out_path: Optional[str] = None,
    html: bool = False,
    bench_dir: Optional[str] = None,
) -> str:
    """Render the report and write it; returns the output path."""
    markdown = render_markdown(run_dir, bench_dir=bench_dir)
    if out_path is None:
        out_path = os.path.join(run_dir, "report.html" if html else "report.md")
    content = markdown_to_html(markdown) if html else markdown
    with open(out_path, "w") as handle:
        handle.write(content)
    return out_path


def render_top(run_dir: str, width: int = 78) -> str:
    """One text frame of the live-run view ``repro top`` refreshes.

    Reads only the artifacts a profiled run flushes periodically
    (collapsed stacks, ``slo.json``, ``memory.json``, the telemetry
    JSONL), so it can watch a run owned by another process.
    """

    def rule(title: str) -> str:
        return f"── {title} " + "─" * max(0, width - len(title) - 4)

    lines = [f"repro top — {run_dir}"]
    records = telemetry_mod.load_run(os.path.join(run_dir, TELEMETRY_FILE))
    health_records = [r for r in records if r.get("stream") == "health"]
    crit = sum(1 for r in health_records if r.get("severity") == health_mod.CRIT)
    warn = sum(1 for r in health_records if r.get("severity") == health_mod.WARN)
    lines.append(
        f"telemetry: {len(records)} records | health: "
        f"{crit} CRIT, {warn} WARN"
    )

    slo_doc = _load_json(os.path.join(run_dir, SLO_FILE))
    lines.append(rule("SLO burn"))
    if slo_doc and slo_doc.get("objectives"):
        for status in slo_doc["objectives"]:
            value = status.get("value")
            shown = "-" if value is None else f"{value:.4g}"
            burn = (
                f"burn {status.get('burn_rate', 0.0):5.1f}x"
                if status.get("kind") != "gauge"
                else "gauge      "
            )
            marker = status.get("severity") or (
                "ok" if status.get("ok") else "!!"
            )
            lines.append(
                f"  {status.get('spec', '?'):<38} {shown:>10}  {burn}  {marker}"
            )
    else:
        lines.append("  (no slo.json yet)")

    counts = _load_profile_counts(run_dir)
    lines.append(rule("hot functions (self time)"))
    if counts:
        for frame, samples, fraction in profiler_mod.hot_functions_of(
            counts, n=8
        ):
            lines.append(f"  {fraction:6.1%} {samples:>6}  {frame}")
        lines.append(rule("samples by span"))
        total = sum(counts.values())
        spans = sorted(
            profiler_mod.span_samples_of(counts).items(), key=lambda kv: -kv[1]
        )
        for name, samples in spans[:6]:
            lines.append(f"  {samples / total:6.1%} {samples:>6}  {name}")
    else:
        lines.append("  (no collapsed stacks yet)")

    memory_doc = _load_json(os.path.join(run_dir, MEMORY_FILE))
    lines.append(rule("memory"))
    if memory_doc:
        lines.append(
            f"  traced {memory_doc.get('current_kb', 0.0):,.0f} KiB "
            f"(peak {memory_doc.get('peak_kb', 0.0):,.0f}) | "
            f"RSS {memory_doc.get('rss_kb', 0.0):,.0f} KiB"
        )
        for check in (memory_doc.get("epochs") or {}).values():
            if check.get("suspect"):
                lines.append(
                    f"  LEAK? {check['phase']}: +{check.get('growth_bytes', 0)}"
                    " bytes over trailing epochs"
                )
    else:
        lines.append("  (no memory.json yet)")

    if records:
        lines.append(rule("last events"))
        for record in records[-5:]:
            lines.append(
                f"  #{record.get('seq', '?'):>5} {record.get('stream', '?')}"
            )
    return "\n".join(lines)


def run_smoke(directory: str, audit_rate: Optional[float] = None) -> str:
    """Record a tiny end-to-end run into ``directory`` and return it.

    Micro pipeline — flights at scale 0.12, ASQP-Light, two iterations,
    a few routed queries, and one EXPLAIN ANALYZE — sized for CI: it
    exercises every telemetry stream the report renders in seconds.
    The whole pipeline runs under :func:`repro.obs.run` with the
    profiler, the memory tracker, and the default SLOs enabled, so the
    report's profile/SLO sections render from real artifacts.
    ``audit_rate`` sets the shadow-audit sample rate (``repro audit
    --smoke`` passes 1.0 so every routed query is audited); when set,
    the quality SLOs join the default objectives.
    """
    from .. import obs
    from ..core import ASQPConfig, ASQPSession, ASQPTrainer
    from ..datasets import load_flights
    from ..db import explain

    objectives = list(obs.slo.DEFAULT_OBJECTIVES)
    if audit_rate:
        objectives += list(obs.quality.QUALITY_OBJECTIVES)
    with obs.run(
        directory,
        profile=True,
        memory_tracking=True,
        slo_objectives=objectives,
        audit_rate=audit_rate,
    ):
        bundle = load_flights(scale=0.12, n_queries=6, n_aggregate_queries=2)
        config = ASQPConfig.light(
            memory_budget=120, frame_size=20, n_iterations=2,
            learning_rate=1e-3,  # the CLI's demo/train lr, not light's 0.1
            seed=0,
        )
        model = ASQPTrainer(bundle.db, bundle.workload, config).train()
        session = ASQPSession(model, auto_fine_tune=False)
        for query in list(bundle.workload)[:3]:
            session.query(query)
        explain(bundle.db, list(bundle.workload)[0], analyze=True)
    return directory
