"""Declarative SLOs: latency/answerability objectives with burn-rate alerts.

The paper's contract is *interactive latency* — approximation-set
answers in seconds instead of minutes — so the reproduction states that
contract as service-level objectives and watches them like Quickr /
VerdictDB treat per-query latency budgets. An objective is one line of
text::

    query.p95 < 250ms              # windowed latency objective
    executor.p95 < 200ms @ 99.9%   # explicit compliance target
    estimator.calibration_error < 0.1   # gauge objective
    quality.recall.p10 > 0.85 @ 90%     # lower-bound quality objective

Windowed objectives are evaluated over a rolling window of samples fed
straight from the metrics registry (``metrics.observe`` forwards every
histogram sample of a *watched* metric here — one dict lookup on the
enabled path, nothing when observability is off). Alerting uses the SRE
multi-window burn rate: with error budget ``1 - target``, the fraction
of budget-violating samples in the slow (full) and fast (trailing)
windows is divided by the budget; only when **both** windows burn above
a threshold does an alert fire — a single slow query cannot page, a
sustained regression cannot hide. Gauge objectives compare the current
registry gauge against the threshold at evaluation time.

Alerts feed the existing :mod:`repro.obs.health` WARN/CRIT pipeline
(``health`` telemetry stream, ``health.alerts.*`` counters), and
escalation is deduplicated per objective so periodic evaluation during
a live run does not spam the alert history.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Union

from . import health as _health
from . import metrics as _metrics
from . import telemetry as _telemetry

#: Artifact name inside a run directory.
SLO_FILE = "slo.json"

#: Multi-window burn-rate thresholds (both windows must exceed).
WARN_BURN_RATE = 2.0
CRIT_BURN_RATE = 10.0

#: Samples needed in the slow window before burn alerts may fire.
MIN_SAMPLES = 10

#: Short names usable in objective specs → metric registry names.
ALIASES = {
    "query": "session.query.seconds",
    "executor": "executor.query.seconds",
    "train.rollout": "train.rollout.seconds",
    "train.update": "train.update.seconds",
    "recall": "quality.recall",
    "agg_rel_error": "quality.agg_rel_error",
}

#: p10 exists for lower-bound objectives (quality metrics where *small*
#: is bad); the upper-tail percentiles serve latency-style metrics.
_WINDOW_AGGS = ("p10", "p50", "p95", "p99", "mean", "max")

_SPEC_RE = re.compile(
    r"^\s*(?P<metric>[\w.]+)\s*(?P<op><=|>=|<|>)\s*"
    r"(?P<value>[\d.]+)\s*(?P<unit>us|ms|s|%)?\s*"
    r"(?:@\s*(?P<target>[\d.]+)\s*%)?\s*$"
)

_UNIT_SCALE = {None: 1.0, "s": 1.0, "ms": 1e-3, "us": 1e-6, "%": 1e-2}


@dataclass(frozen=True)
class Objective:
    """One parsed objective (see module docstring for the grammar)."""

    spec: str            # original text, for reports
    name: str            # short name, e.g. "query.p95"
    metric: str          # metrics-registry name the samples come from
    agg: str             # p50|p95|p99|mean|max for windows, "value" for gauges
    op: str              # <, <=, >, >=
    threshold: float     # in base units (seconds / plain value)
    target: float = 0.99  # compliance target (fraction of good samples)

    @property
    def windowed(self) -> bool:
        return self.agg != "value"

    def complies(self, value: float) -> bool:
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        return value >= self.threshold


def parse_objective(spec: Union[str, Objective]) -> Objective:
    """Parse ``"query.p95 < 250ms [@ 99.9%]"`` into an :class:`Objective`."""
    if isinstance(spec, Objective):
        return spec
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(
            f"unparseable SLO spec {spec!r}; expected "
            "'<metric>[.p95] < <value>[ms] [@ <target>%]'"
        )
    metric = match.group("metric")
    head, _, tail = metric.rpartition(".")
    if tail in _WINDOW_AGGS and head:
        agg, metric_name = tail, head
    else:
        agg, metric_name = "value", metric
    threshold = float(match.group("value")) * _UNIT_SCALE[match.group("unit")]
    target = float(match.group("target")) / 100.0 if match.group("target") else 0.99
    if not 0.0 < target < 1.0:
        raise ValueError(f"SLO target must be in (0%, 100%), got {spec!r}")
    resolved = ALIASES.get(metric_name, metric_name)
    return Objective(
        spec=spec.strip(),
        name=f"{metric_name}.{agg}" if agg != "value" else metric_name,
        metric=resolved,
        agg=agg,
        op=match.group("op"),
        threshold=threshold,
        target=target,
    )


def _aggregate(samples: list[float], agg: str) -> float:
    if agg == "mean":
        return sum(samples) / len(samples)
    if agg == "max":
        return max(samples)
    ordered = sorted(samples)
    q = {"p10": 0.10, "p50": 0.50, "p95": 0.95, "p99": 0.99}[agg]
    index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[index]


class SLOTracker:
    """Rolling windows + burn-rate evaluation over registered objectives."""

    def __init__(self, window: int = 256, fast_window: int = 32) -> None:
        self.window = window
        self.fast_window = min(fast_window, window)
        self.objectives: list[Objective] = []
        # samples per watched metric (rings: week-long runs stay flat)
        self._samples: dict[str, deque[float]] = {}
        # highest severity already published per objective (escalation dedup)
        self._published: dict[str, Optional[str]] = {}

    # -- configuration ----------------------------------------------- #
    def add(self, spec: Union[str, Objective]) -> Objective:
        objective = parse_objective(spec)
        self.objectives.append(objective)
        if objective.windowed and objective.metric not in self._samples:
            self._samples[objective.metric] = deque(maxlen=self.window)
        return objective

    def watched_metrics(self) -> frozenset[str]:
        return frozenset(self._samples)

    # -- feed --------------------------------------------------------- #
    def record(self, metric: str, value: float) -> None:
        """One histogram sample (wired as the metrics sample hook)."""
        ring = self._samples.get(metric)
        if ring is not None:
            ring.append(float(value))

    # -- evaluation ---------------------------------------------------- #
    def _evaluate_windowed(self, objective: Objective) -> dict[str, Any]:
        samples = list(self._samples.get(objective.metric, ()))
        status: dict[str, Any] = {
            "name": objective.name,
            "spec": objective.spec,
            "kind": "window",
            "metric": objective.metric,
            "threshold": objective.threshold,
            "target": objective.target,
            "n_samples": len(samples),
            "value": None,
            "ok": True,
            "bad_fraction": 0.0,
            "fast_bad_fraction": 0.0,
            "burn_rate": 0.0,
            "fast_burn_rate": 0.0,
            "severity": None,
            "exemplar_trace_ids": [],
        }
        if not samples:
            return status
        # Worst-value exemplars of the watched histogram link the
        # objective to concrete requests: an alert names the trace ids
        # an operator feeds to `repro analyze --trace`. The operator
        # decides the direction of "worst": upper-bound objectives
        # (latency) blame the largest samples, lower-bound objectives
        # (quality.recall) blame the smallest.
        histogram = _metrics.registry().histogram(objective.metric)
        if histogram is not None:
            status["exemplar_trace_ids"] = [
                exemplar["trace_id"]
                for exemplar in histogram.worst_exemplars(
                    3, largest=objective.op in ("<", "<=")
                )
            ]
        value = _aggregate(samples, objective.agg)
        bad = sum(1 for s in samples if not objective.complies(s))
        fast = samples[-self.fast_window:]
        fast_bad = sum(1 for s in fast if not objective.complies(s))
        budget = max(1.0 - objective.target, 1e-9)
        status["value"] = value
        status["ok"] = objective.complies(value)
        status["bad_fraction"] = bad / len(samples)
        status["fast_bad_fraction"] = fast_bad / len(fast)
        status["burn_rate"] = status["bad_fraction"] / budget
        status["fast_burn_rate"] = status["fast_bad_fraction"] / budget
        if len(samples) >= MIN_SAMPLES:
            slow_burn = min(status["burn_rate"], status["fast_burn_rate"])
            if slow_burn >= CRIT_BURN_RATE:
                status["severity"] = _health.CRIT
            elif slow_burn >= WARN_BURN_RATE:
                status["severity"] = _health.WARN
        return status

    def _evaluate_gauge(self, objective: Objective) -> dict[str, Any]:
        value = _metrics.registry().gauge(objective.metric)
        status: dict[str, Any] = {
            "name": objective.name,
            "spec": objective.spec,
            "kind": "gauge",
            "metric": objective.metric,
            "threshold": objective.threshold,
            "target": objective.target,
            "n_samples": 1 if value is not None else 0,
            "value": value,
            "ok": True,
            "severity": None,
        }
        if value is None:
            return status
        status["ok"] = objective.complies(value)
        if not status["ok"]:
            # Violation is WARN; a 2x miss of the threshold margin is CRIT.
            factor = (
                value / objective.threshold
                if objective.op in ("<", "<=") and objective.threshold > 0
                else 2.0
            )
            status["severity"] = _health.CRIT if factor >= 2.0 else _health.WARN
        return status

    def evaluate(self) -> list[dict[str, Any]]:
        """Current status of every objective (no alerts published)."""
        return [
            self._evaluate_windowed(objective)
            if objective.windowed
            else self._evaluate_gauge(objective)
            for objective in self.objectives
        ]

    # -- alerting ----------------------------------------------------- #
    def publish(
        self, monitor: Optional[_health.HealthMonitor] = None
    ) -> list[_health.Alert]:
        """Evaluate and feed escalations into the health pipeline.

        Each objective publishes only on severity *escalation* (None →
        WARN → CRIT), so periodic evaluation of a live run keeps the
        alert history proportional to state changes, not to time.
        """
        monitor = monitor or _health.active_monitor()
        order = {None: 0, _health.WARN: 1, _health.CRIT: 2}
        alerts: list[_health.Alert] = []
        for status in self.evaluate():
            severity = status["severity"]
            name = status["name"]
            if order[severity] <= order.get(self._published.get(name), 0):
                continue
            self._published[name] = severity
            if status["kind"] == "window":
                message = (
                    f"SLO '{status['spec']}' burning error budget: "
                    f"{status['bad_fraction']:.0%} of the last "
                    f"{status['n_samples']} samples violate the threshold "
                    f"(burn rate {status['burn_rate']:.1f}x slow / "
                    f"{status['fast_burn_rate']:.1f}x fast, "
                    f"{name} = {status['value']:.4g} "
                    f"vs {status['threshold']:.4g})"
                )
                exemplars = status.get("exemplar_trace_ids") or []
                if exemplars:
                    message += (
                        "; worst traces: " + ", ".join(exemplars)
                        + " (repro analyze --trace <id>)"
                    )
                rule = "slo_burn"
            else:
                message = (
                    f"SLO '{status['spec']}' violated: "
                    f"{status['value']:.4g} vs threshold "
                    f"{status['threshold']:.4g}"
                )
                rule = "slo_violation"
            alerts.append(_health.Alert(
                severity, rule, message,
                value=status["value"], threshold=status["threshold"],
            ))
            _metrics.set_gauge(
                f"slo.{name}.burn_rate", status.get("burn_rate", 0.0)
            )
        published = monitor.publish(alerts)
        for status in self.evaluate():
            _telemetry.emit("slo", **{
                k: v for k, v in status.items() if k != "kind"
            })
        return published

    # -- export -------------------------------------------------------- #
    def summary(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "fast_window": self.fast_window,
            "warn_burn_rate": WARN_BURN_RATE,
            "crit_burn_rate": CRIT_BURN_RATE,
            "objectives": self.evaluate(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, default=str)


#: Objectives ``repro profile`` / ``repro report --smoke`` install by
#: default: the paper's interactive-latency pitch plus estimator quality.
DEFAULT_OBJECTIVES = (
    "query.p95 < 250ms",
    "executor.p95 < 200ms",
    "estimator.calibration_error < 0.1",
)


# ------------------------------------------------------------------ #
# module-level singleton (one tracker per observability run)
# ------------------------------------------------------------------ #
#: Bounded: holds at most the one configured tracker (see `clear`).
_ACTIVE: list[SLOTracker] = []


def configure(
    objectives: Iterable[Union[str, Objective]],
    window: int = 256,
    fast_window: int = 32,
) -> SLOTracker:
    """Install a tracker for ``objectives`` and hook it into metrics."""
    clear()
    tracker = SLOTracker(window=window, fast_window=fast_window)
    for spec in objectives:
        tracker.add(spec)
    _ACTIVE.append(tracker)
    _metrics.set_sample_hook(tracker.record)
    return tracker


def active() -> Optional[SLOTracker]:
    return _ACTIVE[0] if _ACTIVE else None


def is_active() -> bool:
    return bool(_ACTIVE)


def clear() -> None:
    """Drop the tracker and detach the metrics sample hook."""
    _ACTIVE.clear()
    _metrics.set_sample_hook(None)


def publish() -> list[_health.Alert]:
    """Publish escalations from the active tracker (no-op when idle)."""
    if not _ACTIVE:
        return []
    return _ACTIVE[0].publish()


def write_json(path: str) -> None:
    if _ACTIVE:
        _ACTIVE[0].write_json(path)
