"""Tail-based trace retention: keep the traces worth debugging.

Retaining every span tree of a long-running service is unbounded;
head-sampling a fixed fraction keeps the *boring* traces and loses the
interesting tails. This module implements the standard fix — decide
*after* the request completes (tail-based sampling):

* **always keep** a query's trace when it was slow (duration above the
  rolling p95 of recent root spans), errored anywhere in its tree, fell
  back to the serial path, tripped the pool watchdog (the last two read
  the stats the executor stamps onto the root span's attrs), or was
  shadow-audited to low answer quality (the ``low_quality`` attr the
  session stamps from :mod:`repro.obs.quality` audit results);
* **head-sample** the unremarkable rest at a configurable rate, decided
  deterministically from the trace id (no RNG state, reproducible
  across replays);
* **keep everything during warmup** — until the rolling window has
  ``min_window`` durations there is no meaningful p95, and a short run
  (one EXPLAIN ANALYZE in CI) must never lose its only trace.

Accounting is exact: every offered root increments exactly one of the
``kept_*`` / ``dropped_head`` counters, and evictions from the bounded
store are tallied separately (``evicted``), so
``offered == sum(kept) + dropped_head`` always holds. Eviction prefers
head-kept traces, then slow, then errored — watchdog/fallback traces
are evicted only when the store holds nothing else (they are the
post-mortem evidence the watchdog path exists for).

The sampler attaches to :func:`repro.obs.trace.set_root_hook`;
``obs.start_run`` installs one per run and ``finish_run`` persists the
store as ``traces.json`` with each trace's worker-lane spans stitched
in by trace id — the artifact ``repro analyze`` reconstructs span trees
from.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Optional

from . import metrics as _metrics
from . import trace as _trace
from .runtime import STATE

#: Artifact name inside a run directory.
TRACES_FILE = "traces.json"

#: Default bound on retained complete traces.
DEFAULT_MAX_TRACES = 64

#: Default head-sampling rate for unremarkable traces.
DEFAULT_HEAD_RATE = 0.1

#: Rolling-duration window for the slow (>p95) decision.
DEFAULT_WINDOW = 256

#: Keep everything until this many durations have been seen.
DEFAULT_MIN_WINDOW = 20

#: Eviction priority: lower leaves the store first. Low-quality traces
#: outrank slow ones (the audit evidence is rarer) but yield to hard
#: failure evidence (errors, fallbacks, watchdog timeouts).
_EVICTION_ORDER = {
    "head": 0, "warmup": 1, "slow": 2, "low_quality": 3, "error": 4,
    "fallback": 5, "watchdog": 6,
}


def _head_keep(trace_id: str, rate: float) -> bool:
    """Deterministic per-trace coin flip: hash the id, not an RNG."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    try:
        draw = int(trace_id[:8], 16) % 10_000
    except ValueError:
        return False
    return draw < rate * 10_000


def _has_error(node: _trace.Span) -> bool:
    if node.error:
        return True
    return any(_has_error(child) for child in node.children)


class TailSampler:
    """Bounded store of complete span trees, tail-sampled (see module)."""

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        head_rate: float = DEFAULT_HEAD_RATE,
        window: int = DEFAULT_WINDOW,
        min_window: int = DEFAULT_MIN_WINDOW,
    ) -> None:
        self.max_traces = max(1, int(max_traces))
        self.head_rate = float(head_rate)
        self.min_window = int(min_window)
        self._durations: deque[float] = deque(maxlen=window)
        self._entries: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self.counts: dict[str, int] = {
            "offered": 0,
            "kept_slow": 0,
            "kept_error": 0,
            "kept_fallback": 0,
            "kept_watchdog": 0,
            "kept_low_quality": 0,
            "kept_head": 0,
            "kept_warmup": 0,
            "dropped_head": 0,
            "evicted": 0,
        }

    # -- decision ----------------------------------------------------- #
    def _rolling_p95(self) -> float:
        ordered = sorted(self._durations)
        index = min(len(ordered) - 1, max(0, round(0.95 * len(ordered)) - 1))
        return ordered[index]

    def offer(self, root: _trace.Span) -> Optional[str]:
        """Decide for one finished root span; the keep reason or None.

        Only request-scoped roots (those carrying a trace id) are
        sampled — anonymous spans have no identity to retain under.
        """
        if root.trace_id is None:
            return None
        duration = float(root.duration_s)
        attrs = root.attrs
        with self._lock:
            self.counts["offered"] += 1
            reason = None
            if int(attrs.get("watchdog_timeouts") or 0) > 0:
                reason = "watchdog"
            elif int(attrs.get("fallbacks") or 0) > 0:
                reason = "fallback"
            elif _has_error(root):
                reason = "error"
            elif int(attrs.get("low_quality") or 0) > 0:
                reason = "low_quality"
            elif (
                len(self._durations) >= self.min_window
                and duration > self._rolling_p95()
            ):
                reason = "slow"
            elif len(self._durations) < self.min_window:
                reason = "warmup"
            elif _head_keep(root.trace_id, self.head_rate):
                reason = "head"
            self._durations.append(duration)
            if reason is None:
                self.counts["dropped_head"] += 1
                self._metric("trace.sampler.dropped")
                return None
            self.counts[f"kept_{reason}"] += 1
            self._entries.append(
                {
                    "trace_id": root.trace_id,
                    "reason": reason,
                    "duration_s": duration,
                    "root": root.to_dict(),
                }
            )
            self._metric("trace.sampler.kept")
            while len(self._entries) > self.max_traces:
                victim = min(
                    range(len(self._entries)),
                    key=lambda i: (
                        _EVICTION_ORDER.get(self._entries[i]["reason"], 0),
                        i,
                    ),
                )
                del self._entries[victim]
                self.counts["evicted"] += 1
                self._metric("trace.sampler.evicted")
            return reason

    def _metric(self, name: str) -> None:
        if STATE.enabled:
            _metrics.registry().add(name)

    # -- export ------------------------------------------------------- #
    def entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def summary(self) -> dict[str, Any]:
        with self._lock:
            counts = dict(self.counts)
        kept = sum(v for k, v in counts.items() if k.startswith("kept_"))
        return {
            "max_traces": self.max_traces,
            "head_rate": self.head_rate,
            "min_window": self.min_window,
            "counts": counts,
            "kept": kept,
            "dropped": counts["dropped_head"],
        }

    def export(
        self, worker_spans: Optional[list[dict[str, Any]]] = None
    ) -> dict[str, Any]:
        """The ``traces.json`` document: store + exact drop accounting.

        ``worker_spans`` (from :func:`repro.obs.trace.worker_spans`)
        are stitched onto each retained trace by trace id, so a trace
        entry is self-contained: root tree plus its worker lanes.
        """
        by_trace: dict[str, list[dict[str, Any]]] = {}
        for record in worker_spans or []:
            trace_id = record.get("trace_id")
            if trace_id:
                by_trace.setdefault(trace_id, []).append(record)
        document = self.summary()
        document["traces"] = [
            {**entry, "worker_spans": by_trace.get(entry["trace_id"], [])}
            for entry in self.entries()
        ]
        return document

    def write_json(
        self, path: str, worker_spans: Optional[list[dict[str, Any]]] = None
    ) -> None:
        with open(path, "w") as handle:
            json.dump(self.export(worker_spans), handle, indent=2, default=str)


# ------------------------------------------------------------------ #
# module-level singleton (one sampler per observability run)
# ------------------------------------------------------------------ #
#: Bounded: holds at most the one configured sampler (see `clear`).
_ACTIVE: list[TailSampler] = []


def configure(
    max_traces: int = DEFAULT_MAX_TRACES,
    head_rate: float = DEFAULT_HEAD_RATE,
    window: int = DEFAULT_WINDOW,
    min_window: int = DEFAULT_MIN_WINDOW,
) -> TailSampler:
    """Install a sampler and hook it onto finished root spans."""
    clear()
    sampler = TailSampler(
        max_traces=max_traces,
        head_rate=head_rate,
        window=window,
        min_window=min_window,
    )
    _ACTIVE.append(sampler)
    _trace.set_root_hook(sampler.offer)
    return sampler


def active() -> Optional[TailSampler]:
    return _ACTIVE[0] if _ACTIVE else None


def is_active() -> bool:
    return bool(_ACTIVE)


def clear() -> None:
    """Drop the sampler and detach the root-span hook."""
    _ACTIVE.clear()
    _trace.set_root_hook(None)


def write_json(path: str) -> None:
    if _ACTIVE:
        _ACTIVE[0].write_json(path, _trace.worker_spans())
