"""Sanctioned wall-clock access for library code.

The ``no-wallclock-in-library`` lint rule bans raw ``time.time()`` /
``time.perf_counter()`` outside ``obs/`` and the bench harnesses:
scattered clock reads cannot be attributed in traces, faked in tests, or
audited for benchmark hygiene. Library code that needs a duration it
*returns as data* (``setup_seconds``, ``elapsed_seconds``, per-phase
timing splits) imports the clock from here instead::

    from ..obs.clock import perf_counter

    started = perf_counter()
    ...
    elapsed = perf_counter() - started

Timing that exists only for observability should use a tracing span
(:func:`repro.obs.trace.span`) rather than this module — spans time,
attribute, and nest in one construct.

This module is intentionally a thin re-export so the functions stay
the interpreter's own (no wrapper overhead on hot paths); being inside
``obs/`` keeps every wall-clock read in the library greppable from one
place. ``process_time`` rides along for wall-vs-cpu accounting
(``QueryStats``): it is banned outside ``obs/`` by the same lint rule.
"""

from __future__ import annotations

from time import perf_counter, process_time, time

__all__ = ["perf_counter", "process_time", "time"]
