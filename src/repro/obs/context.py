"""Request-scoped causal context: trace ids, span ids, and baggage.

Every stream the observability stack records — spans, histogram
samples, telemetry records, SLO alerts — is useless for *triage* unless
the records of one request share an identity. A :class:`RequestContext`
is that identity: a 128-bit trace id, a per-trace span-id counter, and
a small baggage dict (query fingerprint, tenant placeholder for the
serving arc). The active context lives in a :class:`contextvars.ContextVar`,
so it follows the request across threads spawned with a copied context
and is invisible to unrelated work.

Propagation rules (DESIGN.md §13):

* :func:`ensure` is the executor's entry point — it reuses an already
  active context (a session that opened one query-scoped context keeps
  one trace across nested executes) or activates a fresh one;
* :func:`current_wire` snapshots the active context as a plain dict
  that ``db/parallel.py`` ships inside task payloads; worker-side
  :class:`repro.obs.worker.TaskRecorder` carries it back verbatim so
  stitched worker spans land under the originating query's trace id
  (workers never *activate* a context — they only relay the wire form,
  which keeps this module free of worker-side global writes);
* :func:`repro.obs.telemetry.emit` and :class:`repro.obs.trace.Span`
  read the context-local on their enabled paths and stamp ``trace_id``
  into everything they record; ``metrics.observe`` uses it to capture
  per-bucket exemplars.

Id generation uses ``os.urandom`` (no global RNG, no wall clock), and
span ids are a cheap per-trace counter — unique within a trace, which
is all causal stitching needs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

#: The context-local holding the active RequestContext (or None).
_ACTIVE: ContextVar[Optional["RequestContext"]] = ContextVar(
    "repro_request_context", default=None
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


class RequestContext:
    """Identity of one request: trace id, span-id counter, baggage."""

    __slots__ = ("trace_id", "span_id", "baggage", "_span_counter")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        baggage: Optional[dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.span_id = span_id or "0000000000000001"
        self.baggage: dict[str, Any] = dict(baggage or {})
        self._span_counter = 1

    def next_span_id(self) -> str:
        """A fresh span id, unique within this trace (16 hex chars)."""
        self._span_counter += 1
        return f"{self._span_counter:016x}"

    def to_wire(self) -> dict[str, Any]:
        """Plain-dict form shipped across process boundaries."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "baggage": dict(self.baggage),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "RequestContext":
        return cls(
            trace_id=wire.get("trace_id"),
            span_id=wire.get("span_id"),
            baggage=wire.get("baggage"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestContext(trace_id={self.trace_id!r})"


def new_context(
    fingerprint: Optional[str] = None,
    tenant: Optional[str] = None,
    **baggage: Any,
) -> RequestContext:
    """Build a fresh context; fingerprint/tenant land in the baggage."""
    if fingerprint is not None:
        baggage["fingerprint"] = fingerprint
    if tenant is not None:
        baggage["tenant"] = tenant
    return RequestContext(baggage=baggage)


def current() -> Optional[RequestContext]:
    """The active request context, or None outside any request."""
    return _ACTIVE.get()


def current_trace_id() -> Optional[str]:
    """Trace id of the active context (one ContextVar read), or None."""
    context = _ACTIVE.get()
    return context.trace_id if context is not None else None


def current_wire() -> Optional[dict[str, Any]]:
    """Wire form of the active context for task payloads, or None."""
    context = _ACTIVE.get()
    return context.to_wire() if context is not None else None


@contextmanager
def activate(context: RequestContext) -> Iterator[RequestContext]:
    """Make ``context`` active for the duration of the block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


@contextmanager
def ensure(
    fingerprint: Optional[str] = None, **baggage: Any
) -> Iterator[RequestContext]:
    """Reuse the active context, or activate a fresh one for the block.

    The executor wraps every observed query in this: a caller that
    already opened a request context (one session query spanning
    several executes) keeps a single trace; a bare ``execute()`` gets
    its own. Baggage merges into a reused context without overwriting
    existing keys, so the outermost request wins.
    """
    existing = _ACTIVE.get()
    if existing is not None:
        if fingerprint is not None:
            existing.baggage.setdefault("fingerprint", fingerprint)
        for key, value in baggage.items():
            existing.baggage.setdefault(key, value)
        yield existing
        return
    with activate(new_context(fingerprint=fingerprint, **baggage)) as context:
        yield context
