"""Nestable tracing spans with a thread-local active-span stack.

A *span* is one timed region of work — ``span("execute.hash_join")`` —
carrying wall-time, free-form attributes, and numeric counters. Spans
nest: a span opened while another is active becomes its child, so one
session query produces a tree (``session.query`` → ``execute`` →
``execute.hash_join`` …). Each thread keeps its own stack, so actors
running on worker threads cannot corrupt each other's nesting.

Finished *root* spans accumulate in a bounded process-global list and
export two ways:

* :func:`tree` — a plain-dict JSON tree (name, seconds, attrs, counters,
  children), the format ``repro trace`` pretty-prints;
* :func:`chrome_trace` — a ``traceEvents`` list loadable by
  ``chrome://tracing`` / Perfetto (complete events, microseconds).

Zero overhead when disabled: :func:`span` checks ``STATE.enabled`` and
returns the shared falsy :data:`NULL_SPAN` before allocating anything.
Callers attach attributes allocation-free via::

    with span("execute") as sp:
        if sp:
            sp.set(tables=n_tables)
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Optional

from . import context as _context
from .runtime import STATE

#: Cap on retained finished root spans (oldest dropped first).
MAX_ROOTS = 256


class NullSpan:
    """Falsy no-op stand-in returned while observability is disabled."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def count(self, name: str, value: float = 1.0) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed, counted region of work."""

    __slots__ = (
        "name",
        "start_s",
        "duration_s",
        "attrs",
        "counters",
        "children",
        "error",
        "thread_name",
        "trace_id",
        "span_id",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_s = 0.0
        self.duration_s = 0.0
        self.attrs: dict[str, Any] = {}
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.error: Optional[str] = None
        self.thread_name = ""
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None

    def __bool__(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        """Attach attributes (overwriting on key collision)."""
        self.attrs.update(attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment a numeric counter on this span."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    # -- context manager ------------------------------------------- #
    def __enter__(self) -> "Span":
        stack = _stack()
        stack.append(self)
        self.thread_name = threading.current_thread().name
        request = _context.current()
        if request is not None:
            self.trace_id = request.trace_id
            self.span_id = request.next_span_id()
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        stack = _stack()
        # Pop *this* span even if an inner span leaked (exception safety):
        # everything above it on the stack is abandoned, not re-parented.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            _record_root(self)
        return False  # never swallow exceptions

    # -- export ----------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "seconds": self.duration_s,
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.span_id:
            record["span_id"] = self.span_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.counters:
            record["counters"] = dict(self.counters)
        if self.error:
            record["error"] = self.error
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record


_LOCAL = threading.local()
_ROOTS: list[Span] = []
_ROOTS_LOCK = threading.Lock()

#: Cap on retained worker-lane spans (oldest dropped first). Worker
#: spans arrive as plain dicts shipped back from pool workers (see
#: repro.obs.worker) — one per morsel task, so a few thousand covers
#: hundreds of dispatches.
MAX_WORKER_SPANS = 4096
_WORKER_SPANS: list[dict[str, Any]] = []

#: Cross-thread view of every thread's active-span stack, so the
#: sampling profiler can attribute a sample taken *of* thread T to T's
#: innermost span without touching T. Keyed by thread ident; entries of
#: dead threads are purged whenever the table outgrows the live set
#: (bounded: live threads + a purge slack of MAX_STACK_TABLE).
MAX_STACK_TABLE = 64
_THREAD_STACKS: dict[int, list[Span]] = {}


def _stack() -> list[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
        _register_stack(stack)
    return stack


def _register_stack(stack: list[Span]) -> None:
    with _ROOTS_LOCK:
        if len(_THREAD_STACKS) >= MAX_STACK_TABLE:
            alive = {t.ident for t in threading.enumerate()}
            for tid in [t for t in _THREAD_STACKS if t not in alive]:
                del _THREAD_STACKS[tid]
        _THREAD_STACKS[threading.get_ident()] = stack


def active_span_name(tid: int) -> Optional[str]:
    """Innermost active span name of thread ``tid`` (profiler-facing).

    Lock-free best-effort read: the owning thread may push/pop
    concurrently, so a sample can land one span early or late — fine
    for statistical attribution, and never corrupts the stack itself.
    """
    stack = _THREAD_STACKS.get(tid)
    if not stack:
        return None
    try:
        return stack[-1].name
    except IndexError:
        return None


#: Optional observer of finished root spans (installed by
#: repro.obs.sampling so the tail sampler sees every completed tree);
#: at most one, None when no sampler is configured.
_ROOT_HOOK = None


def set_root_hook(hook) -> None:
    """Install (or clear, with None) the finished-root-span observer."""
    global _ROOT_HOOK
    _ROOT_HOOK = hook


def _record_root(root: Span) -> None:
    with _ROOTS_LOCK:
        _ROOTS.append(root)
        if len(_ROOTS) > MAX_ROOTS:
            del _ROOTS[: len(_ROOTS) - MAX_ROOTS]
    # Outside the lock: the tail sampler computes rolling percentiles
    # and must never serialize against span recording.
    hook = _ROOT_HOOK
    if hook is not None:
        hook(root)


def span(name: str, **attrs: Any):
    """Open a span (context manager); no-op while disabled."""
    if not STATE.enabled:
        return NULL_SPAN
    opened = Span(name)
    if attrs:
        opened.attrs.update(attrs)
    return opened


def current() -> Optional[Span]:
    """The innermost active span on this thread, or None."""
    if not STATE.enabled:
        return None
    stack = _stack()
    return stack[-1] if stack else None


def count(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active span (no-op when disabled/idle)."""
    if not STATE.enabled:
        return
    stack = _stack()
    if stack:
        stack[-1].count(name, value)


def roots() -> list[Span]:
    """Finished root spans, oldest first."""
    with _ROOTS_LOCK:
        return list(_ROOTS)


def record_worker_spans(
    pid: int, spans: list[dict[str, Any]], trace_id: Optional[str] = None
) -> None:
    """Stitch spans captured inside worker ``pid`` into the trace.

    ``spans`` are :meth:`repro.obs.worker.WorkerSpan.to_dict` payloads.
    They share the parent's ``perf_counter`` epoch (fork children keep
    CLOCK_MONOTONIC), so they drop straight into the timeline; the pid
    becomes a distinct process lane in :func:`chrome_trace`.

    ``trace_id`` (the originating request's, relayed through the task
    envelope — see :mod:`repro.obs.context`) stitches each worker span
    under that request's trace; when absent, the active context at
    stitch time is used, so parent-side dispatch always attributes.
    """
    if trace_id is None:
        trace_id = _context.current_trace_id()
    with _ROOTS_LOCK:
        for span_dict in spans:
            record = dict(span_dict)
            record["pid"] = int(pid)
            if trace_id and not record.get("trace_id"):
                record["trace_id"] = trace_id
            _WORKER_SPANS.append(record)
        if len(_WORKER_SPANS) > MAX_WORKER_SPANS:
            del _WORKER_SPANS[: len(_WORKER_SPANS) - MAX_WORKER_SPANS]


def worker_spans() -> list[dict[str, Any]]:
    """Stitched worker-lane spans, oldest first (each carries ``pid``)."""
    with _ROOTS_LOCK:
        return [dict(record) for record in _WORKER_SPANS]


def reset() -> None:
    """Drop all finished root spans (active stacks are untouched)."""
    with _ROOTS_LOCK:
        _ROOTS.clear()
        _WORKER_SPANS.clear()


def tree() -> list[dict[str, Any]]:
    """JSON-ready tree of all finished root spans."""
    return [root.to_dict() for root in roots()]


def chrome_trace() -> dict[str, Any]:
    """Chrome-trace-format ("complete event") view of the finished spans.

    Parent-process spans render under ``pid=1`` (one ``tid`` row per
    thread); spans stitched from pool workers render under their real
    worker pid, giving each worker its own process lane next to the
    parent timeline (both clocks are the same CLOCK_MONOTONIC epoch).
    Load the written file in ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def emit(node: Span) -> None:
        tid = tids.setdefault(node.thread_name, len(tids) + 1)
        args: dict[str, Any] = dict(node.attrs)
        args.update(node.counters)
        if node.error:
            args["error"] = node.error
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": node.start_s * 1e6,
                "dur": node.duration_s * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
        for child in node.children:
            emit(child)

    for root in roots():
        emit(root)

    worker_pids: list[int] = []
    for record in worker_spans():
        pid = int(record["pid"])
        if pid not in worker_pids:
            worker_pids.append(pid)
        args = dict(record.get("attrs") or {})
        args.update(record.get("counters") or {})
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": record.get("start_s", 0.0) * 1e6,
                "dur": record.get("seconds", 0.0) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )

    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro (parent)"},
        }
    ]
    for pid in worker_pids:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"repro worker {pid}"},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_trace(path: str) -> None:
    """Write the JSON span tree to ``path``."""
    with open(path, "w") as handle:
        json.dump(tree(), handle, indent=2, default=str)


def write_chrome_trace(path: str) -> None:
    """Write the Chrome-trace-format file to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(), handle, default=str)


def format_tree(
    nodes: Optional[list[dict[str, Any]]] = None, max_depth: int = 6
) -> str:
    """Human-readable rendering of a span tree (used by ``repro trace``)."""
    nodes = tree() if nodes is None else nodes
    lines: list[str] = []

    def render(node: dict[str, Any], depth: int) -> None:
        if depth > max_depth:
            return
        indent = "  " * depth
        extras = []
        for key, value in (node.get("attrs") or {}).items():
            extras.append(f"{key}={value}")
        for key, value in (node.get("counters") or {}).items():
            extras.append(f"{key}={value:g}")
        if node.get("error"):
            extras.append(f"error={node['error']}")
        suffix = ("  [" + " ".join(extras) + "]") if extras else ""
        lines.append(
            f"{indent}{node['name']:<{max(1, 40 - len(indent))}}"
            f" {node.get('seconds', 0.0) * 1e3:9.3f} ms{suffix}"
        )
        for child in node.get("children", []):
            render(child, depth + 1)

    for node in nodes:
        render(node, 0)
    return "\n".join(lines)
