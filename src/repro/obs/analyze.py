"""Trace analysis: span-tree reconstruction, critical paths, run diffs.

Reads the artifacts a run directory holds — ``traces.json`` (the tail
sampler's store of complete traces with worker lanes stitched in) and
``trace.json`` (every retained root span) — and answers the questions
an operator asks after an SLO alert hands them a trace id:

* :func:`load_traces` / :func:`find_trace` — reconstruct the span tree
  (parent spans + worker-lane spans) for a trace id or the slowest N;
* :func:`critical_path` — walk the longest-duration child chain from
  the root, attributing *self time* at each hop as the node's duration
  minus the union of its children's intervals. Using the interval
  union (not the sum) collapses parallel lanes to their max: four
  workers covering the same 10 ms charge the parent 10 ms once, so
  self time is the part of a span no child (or worker) accounts for;
* :func:`aggregate_spans` — per-span-name count/total/self rollup;
* :func:`diff_runs` — per-span-name p50/p95 deltas between two run
  dirs with a regression verdict (``repro diff RUN_A RUN_B``).

Everything here only *reads* files — like ``repro top``/``watch`` it
can analyze a run owned by another process.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from . import TRACE_FILE
from .sampling import TRACES_FILE

#: A span-name p95 must worsen by both this factor and this floor
#: (seconds) before `diff_runs` calls it a regression — tiny absolute
#: wobbles on micro-spans are noise, not verdicts.
REGRESSION_FACTOR = 1.25
REGRESSION_FLOOR_S = 0.5e-3


def _load_json(path: str) -> Optional[Any]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


# ------------------------------------------------------------------ #
# trace loading
# ------------------------------------------------------------------ #
def load_traces(run_dir: str) -> list[dict[str, Any]]:
    """Retained traces of a run, oldest first.

    Prefers ``traces.json`` (tail-sampled store, worker lanes already
    stitched per trace). Falls back to grouping ``trace.json`` roots by
    their trace id for runs recorded before the sampler existed.
    """
    document = _load_json(os.path.join(run_dir, TRACES_FILE))
    if isinstance(document, dict) and isinstance(document.get("traces"), list):
        return document["traces"]
    nodes = _load_json(os.path.join(run_dir, TRACE_FILE))
    entries = []
    for node in nodes or []:
        trace_id = node.get("trace_id")
        if trace_id:
            entries.append(
                {
                    "trace_id": trace_id,
                    "reason": "retained",
                    "duration_s": float(node.get("seconds", 0.0)),
                    "root": node,
                    "worker_spans": [],
                }
            )
    return entries


def sampler_summary(run_dir: str) -> Optional[dict[str, Any]]:
    """The tail sampler's accounting from ``traces.json``, if present."""
    document = _load_json(os.path.join(run_dir, TRACES_FILE))
    if not isinstance(document, dict) or "counts" not in document:
        return None
    return {key: document[key] for key in document if key != "traces"}


def find_trace(
    entries: list[dict[str, Any]], trace_id: str
) -> Optional[dict[str, Any]]:
    """Entry whose trace id matches ``trace_id`` (prefix match allowed)."""
    for entry in entries:
        if entry.get("trace_id") == trace_id:
            return entry
    matches = [
        entry
        for entry in entries
        if str(entry.get("trace_id", "")).startswith(trace_id)
    ]
    return matches[0] if len(matches) == 1 else None


def slowest(entries: list[dict[str, Any]], n: int) -> list[dict[str, Any]]:
    """The ``n`` longest-duration retained traces, slowest first."""
    ordered = sorted(
        entries, key=lambda entry: -float(entry.get("duration_s", 0.0))
    )
    return ordered[: max(0, n)]


# ------------------------------------------------------------------ #
# critical path
# ------------------------------------------------------------------ #
def _interval(node: dict[str, Any]) -> tuple[float, float]:
    start = float(node.get("start_s", 0.0))
    return start, start + float(node.get("seconds", 0.0))


def _union_length(
    intervals: list[tuple[float, float]], lo: float, hi: float
) -> float:
    """Total length of the union of ``intervals`` clamped to [lo, hi]."""
    covered = 0.0
    cursor = lo
    for start, stop in sorted(intervals):
        start, stop = max(start, lo), min(stop, hi)
        if stop <= cursor:
            continue
        covered += stop - max(start, cursor)
        cursor = stop
    return covered


def _attach_workers(
    root: dict[str, Any], worker_spans: list[dict[str, Any]]
) -> dict[int, list[dict[str, Any]]]:
    """Map ``id(node) -> worker spans`` at the deepest containing node.

    Worker-lane spans ship flat (no parent pointers); time containment
    recovers the causal parent — the dispatching operator span whose
    interval covers the worker span.
    """
    attached: dict[int, list[dict[str, Any]]] = {}
    for span in worker_spans:
        lo, hi = _interval(span)
        node = root
        while True:
            candidates = [
                child
                for child in node.get("children", [])
                if _interval(child)[0] <= lo and hi <= _interval(child)[1]
            ]
            if not candidates:
                break
            node = candidates[0]
        attached.setdefault(id(node), []).append(span)
    return attached


def critical_path(
    root: dict[str, Any],
    worker_spans: Optional[list[dict[str, Any]]] = None,
) -> list[dict[str, Any]]:
    """Longest-child-chain walk from ``root`` with self-time attribution.

    Returns one row per hop: ``{"name", "seconds", "self_s", "pid"?}``.
    At each node the walk descends into the child (parent span or
    attached worker span) with the largest duration; ``self_s`` is the
    node's duration minus the union of *all* its children's intervals —
    parallel lanes collapse to their max instead of summing.
    """
    attached = _attach_workers(root, worker_spans or [])
    path: list[dict[str, Any]] = []
    node: Optional[dict[str, Any]] = root
    while node is not None:
        children = list(node.get("children", [])) + attached.get(id(node), [])
        lo, hi = _interval(node)
        covered = _union_length([_interval(child) for child in children], lo, hi)
        row: dict[str, Any] = {
            "name": node.get("name", "?"),
            "seconds": float(node.get("seconds", 0.0)),
            "self_s": max(0.0, float(node.get("seconds", 0.0)) - covered),
        }
        if node.get("pid") is not None:
            row["pid"] = int(node["pid"])
        path.append(row)
        node = (
            max(children, key=lambda child: float(child.get("seconds", 0.0)))
            if children
            else None
        )
    return path


def worker_pids(entry: dict[str, Any]) -> list[int]:
    """Distinct worker pids contributing spans to one trace entry."""
    pids: list[int] = []
    for span in entry.get("worker_spans", []):
        pid = int(span.get("pid", 0))
        if pid and pid not in pids:
            pids.append(pid)
    return pids


# ------------------------------------------------------------------ #
# aggregation & diff
# ------------------------------------------------------------------ #
def _walk(node: dict[str, Any]):
    yield node
    for child in node.get("children", []):
        yield from _walk(child)


def aggregate_spans(
    entries: list[dict[str, Any]]
) -> dict[str, dict[str, float]]:
    """Per-span-name rollup across traces: count, total and self time."""
    rollup: dict[str, dict[str, float]] = {}
    for entry in entries:
        root = entry.get("root") or {}
        spans = list(_walk(root)) + list(entry.get("worker_spans", []))
        for node in spans:
            children = list(node.get("children", []))
            lo, hi = _interval(node)
            covered = _union_length(
                [_interval(child) for child in children], lo, hi
            )
            seconds = float(node.get("seconds", 0.0))
            row = rollup.setdefault(
                node.get("name", "?"),
                {"count": 0, "total_s": 0.0, "self_s": 0.0},
            )
            row["count"] += 1
            row["total_s"] += seconds
            row["self_s"] += max(0.0, seconds - covered)
    return rollup


def _percentile(ordered: list[float], q: float) -> float:
    index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[index]


def span_durations(run_dir: str) -> dict[str, list[float]]:
    """All span durations by name from a run's ``trace.json``."""
    durations: dict[str, list[float]] = {}
    for root in _load_json(os.path.join(run_dir, TRACE_FILE)) or []:
        for node in _walk(root):
            durations.setdefault(node.get("name", "?"), []).append(
                float(node.get("seconds", 0.0))
            )
    return durations


def diff_runs(run_a: str, run_b: str) -> dict[str, Any]:
    """Per-span-name p50/p95 deltas between two runs, with a verdict.

    A span name REGRESSED when B's p95 exceeds A's by both
    ``REGRESSION_FACTOR`` and ``REGRESSION_FLOOR_S``; it improved on
    the mirrored condition; otherwise it is ok. Names present in only
    one run are reported but never change the verdict.
    """
    a, b = span_durations(run_a), span_durations(run_b)
    rows: list[dict[str, Any]] = []
    regressions = 0
    for name in sorted(set(a) | set(b)):
        in_a, in_b = sorted(a.get(name, [])), sorted(b.get(name, []))
        row: dict[str, Any] = {
            "name": name,
            "count_a": len(in_a),
            "count_b": len(in_b),
        }
        if in_a and in_b:
            p50_a, p95_a = _percentile(in_a, 0.50), _percentile(in_a, 0.95)
            p50_b, p95_b = _percentile(in_b, 0.50), _percentile(in_b, 0.95)
            row.update(
                p50_a=p50_a, p50_b=p50_b, p95_a=p95_a, p95_b=p95_b,
                p50_delta_s=p50_b - p50_a, p95_delta_s=p95_b - p95_a,
            )
            if (
                p95_b > p95_a * REGRESSION_FACTOR
                and p95_b - p95_a > REGRESSION_FLOOR_S
            ):
                row["verdict"] = "REGRESSED"
                regressions += 1
            elif (
                p95_a > p95_b * REGRESSION_FACTOR
                and p95_a - p95_b > REGRESSION_FLOOR_S
            ):
                row["verdict"] = "improved"
            else:
                row["verdict"] = "ok"
        else:
            row["verdict"] = "only_a" if in_a else "only_b"
        rows.append(row)
    return {
        "run_a": run_a,
        "run_b": run_b,
        "spans": rows,
        "regressions": regressions,
        "verdict": (
            f"{regressions} span name(s) regressed"
            if regressions
            else "no regressions"
        ),
    }


# ------------------------------------------------------------------ #
# rendering (CLI-facing)
# ------------------------------------------------------------------ #
def format_critical_path(path: list[dict[str, Any]]) -> list[str]:
    lines = ["critical path:"]
    for depth, row in enumerate(path):
        arrow = "-> " if depth else ""
        pid = f" [pid {row['pid']}]" if "pid" in row else ""
        lines.append(
            f"  {'  ' * depth}{arrow}{row['name']}{pid}"
            f"  {row['seconds'] * 1e3:9.3f} ms"
            f"  (self {row['self_s'] * 1e3:.3f} ms)"
        )
    return lines


def format_trace_entry(entry: dict[str, Any]) -> str:
    """Operator-facing rendering of one retained trace."""
    from . import trace as trace_mod

    lines = [
        f"trace {entry.get('trace_id')}"
        f"  {float(entry.get('duration_s', 0.0)) * 1e3:.3f} ms"
        f"  kept: {entry.get('reason', '?')}"
    ]
    pids = worker_pids(entry)
    if pids:
        lines.append(
            f"worker lanes: {len(pids)} pids"
            f" ({', '.join(str(pid) for pid in pids)}),"
            f" {len(entry.get('worker_spans', []))} spans"
        )
    root = entry.get("root") or {}
    lines.append(trace_mod.format_tree([root]))
    lines.extend(
        format_critical_path(
            critical_path(root, entry.get("worker_spans"))
        )
    )
    return "\n".join(lines)
