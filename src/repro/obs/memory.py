"""``tracemalloc``-based memory tracking: snapshots, diffs, leak checks.

Complements the sampling CPU profiler: where :mod:`repro.obs.profiler`
answers "where does the time go", this module answers "where does the
memory go" over a long run. A started tracker

* surfaces current/peak traced bytes and process RSS as gauges in the
  metrics registry (``memory.tracemalloc.current_kb``, ``…peak_kb``,
  ``memory.rss_kb``) on every epoch mark;
* records an *epoch series* per call site (``train.iteration``,
  ``session.query``) so repeated executions of the same phase can be
  leak-checked: monotone growth across the trailing epochs of one phase
  is the smoking gun a single snapshot cannot show;
* reports top allocators by ``file:line`` and growth-vs-baseline diffs
  for ``repro report`` / ``repro top``.

Everything is inert until :func:`start` is called (``repro profile``,
``obs.run(memory=True)``): :func:`mark_epoch` on the disabled path is a
module-list truthiness check, in line with the rest of ``repro.obs``.
``tracemalloc`` itself costs ~2-4x on allocation-heavy code while
tracing, which is why this is opt-in per run rather than always-on.
"""

from __future__ import annotations

import json
import os
import tracemalloc
from collections import deque
from typing import Any, Optional

from . import metrics as _metrics

#: Artifact name inside a run directory.
MEMORY_FILE = "memory.json"

#: Epoch history retained per phase name (ring; week-long runs stay flat).
EPOCH_HISTORY = 128

#: Epoch phases tracked at most (unexpected label explosions stay bounded).
MAX_PHASES = 64


def rss_kb() -> float:
    """Resident set size of this process in KiB (0.0 if unreadable)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # ru_maxrss is KiB on Linux, bytes on macOS; close enough as
            # a fallback high-water mark when /proc is unavailable.
            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except Exception:  # pragma: no cover - platform without resource
            return 0.0


class MemoryTracker:
    """One tracemalloc session with per-phase epoch accounting."""

    def __init__(self, n_frames: int = 1, top_limit: int = 15) -> None:
        self.n_frames = n_frames
        self.top_limit = top_limit
        self._baseline: Optional[tracemalloc.Snapshot] = None
        self._epochs: dict[str, deque[int]] = {}
        self._started = False

    # -- lifecycle --------------------------------------------------- #
    def start(self) -> "MemoryTracker":
        if not self._started:
            tracemalloc.start(self.n_frames)
            self._baseline = tracemalloc.take_snapshot()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            tracemalloc.stop()
            self._started = False

    # -- epochs ------------------------------------------------------ #
    def mark_epoch(self, name: str) -> int:
        """Record one epoch boundary for phase ``name``; returns growth (bytes).

        Growth is current traced bytes minus the previous mark of the
        *same* phase — between two training iterations or two executions
        of the same query, steady state means growth ≈ 0.
        """
        if not self._started:
            return 0
        current, peak = tracemalloc.get_traced_memory()
        history = self._epochs.get(name)
        if history is None:
            if len(self._epochs) >= MAX_PHASES:
                return 0
            history = self._epochs[name] = deque(maxlen=EPOCH_HISTORY)
        growth = current - history[-1] if history else 0
        history.append(current)
        _metrics.set_gauge("memory.tracemalloc.current_kb", current / 1024.0)
        _metrics.set_gauge("memory.tracemalloc.peak_kb", peak / 1024.0)
        _metrics.set_gauge("memory.rss_kb", rss_kb())
        _metrics.set_gauge(f"memory.epoch.{name}.growth_kb", growth / 1024.0)
        return growth

    def leak_check(self, name: str, min_epochs: int = 4) -> dict[str, Any]:
        """Monotone-growth verdict over the trailing epochs of one phase."""
        history = list(self._epochs.get(name, ()))
        if len(history) < min_epochs:
            return {"phase": name, "epochs": len(history), "suspect": False,
                    "growth_bytes": 0}
        tail = history[-min_epochs:]
        deltas = [b - a for a, b in zip(tail, tail[1:])]
        return {
            "phase": name,
            "epochs": len(history),
            "suspect": all(delta > 0 for delta in deltas),
            "growth_bytes": tail[-1] - tail[0],
        }

    # -- allocator tables -------------------------------------------- #
    def _stat_rows(self, stats, size_attr: str) -> list[dict[str, Any]]:
        rows = []
        for stat in stats[: self.top_limit]:
            frame = stat.traceback[0]
            filename = frame.filename.replace("\\", "/")
            marker = filename.rfind("/repro/")
            if marker >= 0:
                filename = filename[marker + 1:]
            rows.append({
                "site": f"{filename}:{frame.lineno}",
                "size_kb": getattr(stat, size_attr) / 1024.0,
                "count": stat.count,
            })
        return rows

    def top_allocators(self) -> list[dict[str, Any]]:
        """Current top allocation sites by ``file:line``."""
        if not self._started:
            return []
        snapshot = tracemalloc.take_snapshot()
        stats = snapshot.statistics("lineno")
        return self._stat_rows(stats, "size")

    def growth_since_baseline(self) -> list[dict[str, Any]]:
        """Top allocation *growth* sites since :meth:`start`."""
        if not self._started or self._baseline is None:
            return []
        snapshot = tracemalloc.take_snapshot()
        stats = snapshot.compare_to(self._baseline, "lineno")
        return self._stat_rows(stats, "size_diff")

    # -- export ------------------------------------------------------ #
    def summary(self) -> dict[str, Any]:
        current, peak = (
            tracemalloc.get_traced_memory() if self._started else (0, 0)
        )
        return {
            "tracing": self._started,
            "current_kb": current / 1024.0,
            "peak_kb": peak / 1024.0,
            "rss_kb": rss_kb(),
            "top_allocators": self.top_allocators(),
            "growth_since_start": self.growth_since_baseline(),
            "epochs": {
                name: self.leak_check(name) for name in sorted(self._epochs)
            },
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, default=str)


# ------------------------------------------------------------------ #
# module-level singleton (one tracker per process)
# ------------------------------------------------------------------ #
#: Bounded: holds at most the one active tracker (see `stop`).
_ACTIVE: list[MemoryTracker] = []


def start(n_frames: int = 1) -> MemoryTracker:
    """Start (or return) the process-wide memory tracker."""
    if _ACTIVE:
        return _ACTIVE[0]
    tracker = MemoryTracker(n_frames=n_frames)
    _ACTIVE.append(tracker)
    tracker.start()
    return tracker


def stop() -> Optional[MemoryTracker]:
    """Stop tracking; returns the tracker (its summary stays readable)."""
    if not _ACTIVE:
        return None
    tracker = _ACTIVE.pop()
    tracker.stop()
    return tracker


def active() -> Optional[MemoryTracker]:
    return _ACTIVE[0] if _ACTIVE else None


def is_active() -> bool:
    return bool(_ACTIVE)


def mark_epoch(name: str) -> int:
    """Epoch mark on the active tracker; no-op (one check) when idle."""
    if not _ACTIVE:
        return 0
    return _ACTIVE[0].mark_epoch(name)


def write_json(path: str) -> None:
    if _ACTIVE:
        _ACTIVE[0].write_json(path)
