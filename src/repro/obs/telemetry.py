"""Structured event streams (JSONL) with bounded retention.

A telemetry *record* is one flat JSON object tagged with its ``stream``
(``"train.update"``, ``"query"``, ``"log"``, …) and a monotonically
increasing sequence number. Records always land in a bounded in-memory
ring (so tests and the CLI can inspect a run without touching disk) and,
when a sink path is configured, are appended to a JSONL file as they
happen — the format ``repro stats`` reads back.

Retention is bounded on both axes so week-long runs stay flat:

* in memory, the ring is a ``deque(maxlen=MAX_RECORDS)``;
* on disk, the sink rotates — when the active file would exceed
  ``max_bytes`` (or ``max_lines``), ``telemetry.jsonl`` becomes
  ``telemetry.1.jsonl``, ``.1`` becomes ``.2``, … and files beyond
  ``max_files`` are deleted. A record that lands the file *exactly at*
  the cap stays put; the next record triggers the rotation, and the
  first record of a fresh file is always written even if it alone
  exceeds the cap (a record is never split or silently dropped).

:func:`load_run` reads a rotated set back transparently (oldest file
first), so ``health.replay()`` and ``repro report`` see every retained
record regardless of how many times the sink rolled.

Sink appends are one ``os.write`` on an ``O_APPEND`` descriptor —
atomic under POSIX — so multiple processes appending to the same
stream (a fork child that inherited the configured sink, a wrapper
process) can interleave whole records but never partial lines. This
file is the *only* module allowed to perform raw append-mode writes:
``repro lint``'s whole-program ``telemetry-sink-only`` rule flags
``os.write``/``open(..., "a")``/``O_APPEND`` anywhere else, so the
atomicity argument above stays true for every stream in the repo.

Emission is a no-op while observability is disabled, matching the rest
of ``repro.obs``.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from collections import deque
from typing import Any, Optional

from . import context as _context
from .runtime import STATE

#: Cap on in-memory records (ring: oldest dropped first).
MAX_RECORDS = 10_000

#: Default on-disk rotation: 64 MiB per file, 8 rotated files kept —
#: a run's telemetry footprint is bounded near 0.5 GiB however long it
#: lives. ``configure(..., max_bytes=None)`` disables rotation.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
DEFAULT_MAX_FILES = 8

_LOCK = threading.Lock()
_RECORDS: deque[dict[str, Any]] = deque(maxlen=MAX_RECORDS)
_SINK_PATH: Optional[str] = None
_SEQUENCE = 0
_MAX_BYTES: Optional[int] = None
_MAX_LINES: Optional[int] = None
_MAX_FILES: int = DEFAULT_MAX_FILES
_SINK_BYTES = 0
_SINK_LINES = 0


def _rotation_path(path: str, index: int) -> str:
    root, ext = os.path.splitext(path)
    return f"{root}.{index}{ext}"


def configure(
    path: Optional[str],
    max_bytes: Optional[int] = None,
    max_lines: Optional[int] = None,
    max_files: int = DEFAULT_MAX_FILES,
) -> None:
    """Set (or clear, with None) the JSONL sink file; truncates the file.

    Any rotated siblings left by a previous run in the same directory
    are deleted, so the rotated set always describes exactly one run.
    """
    global _SINK_PATH, _MAX_BYTES, _MAX_LINES, _MAX_FILES
    global _SINK_BYTES, _SINK_LINES
    with _LOCK:
        _SINK_PATH = path
        _MAX_BYTES = max_bytes
        _MAX_LINES = max_lines
        _MAX_FILES = max(1, max_files)
        _SINK_BYTES = 0
        _SINK_LINES = 0
        if path is not None:
            with open(path, "w"):
                pass
            root, ext = os.path.splitext(path)
            for stale in glob.glob(f"{root}.*{ext}"):
                suffix = stale[len(root) + 1: len(stale) - len(ext)]
                if suffix.isdigit():
                    os.remove(stale)


def _rotate_locked() -> None:
    """Shift ``path`` → ``.1`` → ``.2`` …, dropping beyond ``_MAX_FILES``."""
    global _SINK_BYTES, _SINK_LINES
    assert _SINK_PATH is not None
    oldest = _rotation_path(_SINK_PATH, _MAX_FILES)
    if os.path.exists(oldest):
        os.remove(oldest)
    for index in range(_MAX_FILES - 1, 0, -1):
        source = _rotation_path(_SINK_PATH, index)
        if os.path.exists(source):
            os.replace(source, _rotation_path(_SINK_PATH, index + 1))
    if os.path.exists(_SINK_PATH):
        os.replace(_SINK_PATH, _rotation_path(_SINK_PATH, 1))
    _SINK_BYTES = 0
    _SINK_LINES = 0


def emit(stream: str, **fields: Any) -> None:
    """Record one event iff observability is enabled.

    Records written while a request context is active are stamped with
    its ``trace_id`` (explicit ``trace_id=...`` fields win), so every
    stream joins back to the originating query's trace.
    """
    if not STATE.enabled:
        return
    trace_id = _context.current_trace_id()
    global _SEQUENCE, _SINK_BYTES, _SINK_LINES
    with _LOCK:
        _SEQUENCE += 1
        record = {"stream": stream, "seq": _SEQUENCE, "ts": time.time(), **fields}
        if trace_id is not None and "trace_id" not in fields:
            record["trace_id"] = trace_id
        _RECORDS.append(record)
        if _SINK_PATH is not None:
            data = json.dumps(record, default=str) + "\n"
            over_bytes = (
                _MAX_BYTES is not None
                and _SINK_BYTES > 0
                and _SINK_BYTES + len(data) > _MAX_BYTES
            )
            over_lines = _MAX_LINES is not None and _SINK_LINES >= _MAX_LINES
            if over_bytes or over_lines:
                _rotate_locked()
            # One os.write on an O_APPEND fd: POSIX appends are atomic
            # per write call, so two processes sharing the sink (e.g. a
            # fork child that inherited the configured path) can never
            # interleave partial lines — a buffered text-file append
            # would split records larger than the IO buffer.
            encoded = data.encode("utf-8")
            fd = os.open(
                _SINK_PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, encoded)
            finally:
                os.close(fd)
            _SINK_BYTES += len(encoded)
            _SINK_LINES += 1


def records(stream: Optional[str] = None) -> list[dict[str, Any]]:
    """In-memory records, optionally filtered to one stream."""
    with _LOCK:
        out = list(_RECORDS)
    if stream is not None:
        out = [record for record in out if record.get("stream") == stream]
    return out


def reset() -> None:
    """Drop in-memory records and restart the sequence (sink unchanged)."""
    global _SEQUENCE
    with _LOCK:
        _RECORDS.clear()
        _SEQUENCE = 0


def write_jsonl(path: str) -> None:
    """Dump the in-memory records to ``path`` (one JSON object per line)."""
    with _LOCK:
        out = list(_RECORDS)
    with open(path, "w") as handle:
        for record in out:
            handle.write(json.dumps(record, default=str) + "\n")


def load_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse one telemetry JSONL file back into records.

    Unparseable lines are skipped rather than fatal: ``repro top``
    reads files that a live run is still appending to, so the last
    line may be half-written.
    """
    out: list[dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return out


def rotated_paths(path: str) -> list[str]:
    """Existing files of a rotated set, oldest first, active file last."""
    root, ext = os.path.splitext(path)
    indexed: list[tuple[int, str]] = []
    for candidate in glob.glob(f"{root}.*{ext}"):
        suffix = candidate[len(root) + 1: len(candidate) - len(ext)]
        if suffix.isdigit():
            indexed.append((int(suffix), candidate))
    out = [p for _, p in sorted(indexed, reverse=True)]
    if os.path.exists(path):
        out.append(path)
    return out


def load_run(path: str) -> list[dict[str, Any]]:
    """Records across the whole rotated set of ``path``, oldest first.

    Readback order is deterministic even when records share a timestamp
    across a rotation boundary (multi-process writers interleaving at
    the cap): records sort stably by ``(ts, file_index, line_index)``,
    so every replayer — ``repro analyze``/``report``/``watch --once`` —
    sees the identical sequence on every read.
    """
    indexed: list[tuple[float, int, int, dict[str, Any]]] = []
    for file_index, part in enumerate(rotated_paths(path)):
        for line_index, record in enumerate(load_jsonl(part)):
            ts = record.get("ts")
            key_ts = float(ts) if isinstance(ts, (int, float)) else 0.0
            indexed.append((key_ts, file_index, line_index, record))
    indexed.sort(key=lambda item: item[:3])
    return [record for _, _, _, record in indexed]
