"""Structured event streams (JSONL): training updates and query outcomes.

A telemetry *record* is one flat JSON object tagged with its ``stream``
(``"train.update"``, ``"query"``, ``"log"``, …) and a monotonically
increasing sequence number. Records always land in a bounded in-memory
ring (so tests and the CLI can inspect a run without touching disk) and,
when a sink path is configured, are appended to a JSONL file as they
happen — the format ``repro stats`` reads back.

Emission is a no-op while observability is disabled, matching the rest
of ``repro.obs``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Optional

from .runtime import STATE

#: Cap on in-memory records (oldest dropped first).
MAX_RECORDS = 10_000

_LOCK = threading.Lock()
_RECORDS: list[dict[str, Any]] = []
_SINK_PATH: Optional[str] = None
_SEQUENCE = 0


def configure(path: Optional[str]) -> None:
    """Set (or clear, with None) the JSONL sink file; truncates the file."""
    global _SINK_PATH
    with _LOCK:
        _SINK_PATH = path
        if path is not None:
            with open(path, "w"):
                pass


def emit(stream: str, **fields: Any) -> None:
    """Record one event iff observability is enabled."""
    if not STATE.enabled:
        return
    global _SEQUENCE
    with _LOCK:
        _SEQUENCE += 1
        record = {"stream": stream, "seq": _SEQUENCE, "ts": time.time(), **fields}
        _RECORDS.append(record)
        if len(_RECORDS) > MAX_RECORDS:
            del _RECORDS[: len(_RECORDS) - MAX_RECORDS]
        if _SINK_PATH is not None:
            with open(_SINK_PATH, "a") as handle:
                handle.write(json.dumps(record, default=str) + "\n")


def records(stream: Optional[str] = None) -> list[dict[str, Any]]:
    """In-memory records, optionally filtered to one stream."""
    with _LOCK:
        out = list(_RECORDS)
    if stream is not None:
        out = [record for record in out if record.get("stream") == stream]
    return out


def reset() -> None:
    """Drop in-memory records and restart the sequence (sink unchanged)."""
    global _SEQUENCE
    with _LOCK:
        _RECORDS.clear()
        _SEQUENCE = 0


def write_jsonl(path: str) -> None:
    """Dump the in-memory records to ``path`` (one JSON object per line)."""
    with _LOCK:
        out = list(_RECORDS)
    with open(path, "w") as handle:
        for record in out:
            handle.write(json.dumps(record, default=str) + "\n")


def load_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file back into records."""
    out: list[dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
