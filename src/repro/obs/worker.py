"""Worker-side capture for cross-process observability.

Pool workers run with the global observability stack disabled (their
registries and span stores would die with the process — see
``db/parallel._worker_init``). Instead, each morsel task records into a
private :class:`TaskRecorder` and ships the result of :meth:`export`
back to the parent *piggybacked on the task's return value*. The parent
then stitches the records into its own stack:

* spans become per-worker lanes in the Chrome-trace export
  (:func:`repro.obs.trace.record_worker_spans` — distinct ``pid`` rows);
* counters and histograms merge into the process registry via
  :meth:`repro.obs.metrics.MetricsRegistry.merge`;
* per-record busy time feeds the query's ``QueryStats`` envelope
  (skew ratio, straggler count, per-worker utilization).

Timestamps use ``time.perf_counter()``, which on Linux is the
system-wide ``CLOCK_MONOTONIC``: fork children share the parent's
epoch, so worker span timestamps are directly comparable with parent
spans and need no clock translation when stitched.

The recorder is deliberately tiny and always on inside workers — one
dict append per span is noise next to a morsel's work — so the
enabled-vs-disabled overhead gate in ``bench_kernels --obs-check``
measures only the parent-side stitching cost.

Fork-safety contract: everything in this module is reachable from
worker tasks, so ``repro lint``'s ``fork-unsafe-worker-reachable`` rule
walks it on every run (DESIGN.md §12). Keep it free of module-global
writes, locks, threads, and fd opens — recorder state must live on the
instance, which is exactly what lets the rule pass without
suppressions.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Optional

from .metrics import Histogram


class WorkerSpan:
    """One timed region inside a worker task (flat — no nesting)."""

    __slots__ = ("name", "start_s", "seconds", "attrs", "counters")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.start_s = 0.0
        self.seconds = 0.0
        self.attrs = attrs
        self.counters: dict[str, float] = {}

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "seconds": self.seconds,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.counters:
            record["counters"] = dict(self.counters)
        return record


class TaskRecorder:
    """Span/metric recorder scoped to one morsel task in one worker.

    Everything it captures is plain picklable data; :meth:`export`
    returns the envelope the parent-side stitcher understands.

    ``wire`` is the originating request's context snapshot
    (:func:`repro.obs.context.current_wire`), relayed through the task
    payload by ``db/parallel.py``. The recorder never *activates* it —
    workers have no context-local state to mutate — it only rides back
    in the export so the parent stitches these spans under the right
    trace id.
    """

    __slots__ = ("spans", "counters", "histograms", "wire")

    def __init__(self, wire: Optional[dict[str, Any]] = None) -> None:
        self.spans: list[WorkerSpan] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.wire: dict[str, Any] = wire or {}

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[WorkerSpan]:
        opened = WorkerSpan(name, dict(attrs))
        opened.start_s = perf_counter()
        try:
            yield opened
        finally:
            opened.seconds = perf_counter() - opened.start_s
            self.spans.append(opened)

    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def export(self) -> dict[str, Any]:
        """The shipped envelope: ``{"pid", "busy_s", "spans", "counters",
        "histograms"}`` — all plain data, safe to pickle back with the
        task result."""
        record = {
            "pid": os.getpid(),
            "busy_s": sum(span.seconds for span in self.spans),
            "spans": [span.to_dict() for span in self.spans],
            "counters": dict(self.counters),
            "histograms": {
                name: histogram.dump()
                for name, histogram in self.histograms.items()
            },
        }
        trace_id = self.wire.get("trace_id")
        if trace_id:
            record["trace_id"] = trace_id
        return record


def combine_metrics(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Collapse shipped task records into one registry-mergeable dump.

    Counters sum across records; histogram dumps with the same name and
    bucket ladder merge bucket-wise (foreign ladders re-observe at their
    mean, matching :meth:`Histogram.merge_dump` semantics). The result
    feeds one :meth:`MetricsRegistry.merge` call per dispatch instead of
    one per morsel.
    """
    counters: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    for record in records:
        for name, value in (record.get("counters") or {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, dump in (record.get("histograms") or {}).items():
            histogram = histograms.get(name)
            if histogram is None:
                from .metrics import DEFAULT_BUCKETS

                bounds = tuple(dump.get("bounds", DEFAULT_BUCKETS))
                histogram = histograms[name] = Histogram(bounds)
            histogram.merge_dump(dump)
    return {
        "counters": counters,
        "histograms": {
            name: histogram.dump() for name, histogram in histograms.items()
        },
    }


def busy_by_pid(records: list[dict[str, Any]]) -> dict[int, float]:
    """Per-worker busy seconds summed across shipped task records."""
    busy: dict[int, float] = {}
    for record in records:
        pid = int(record.get("pid", 0))
        busy[pid] = busy.get(pid, 0.0) + float(record.get("busy_s", 0.0))
    return busy
