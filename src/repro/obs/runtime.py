"""Shared on/off switch for the observability subsystem.

Every instrumentation site in the library funnels through one flag:
``STATE.enabled``. The contract (DESIGN.md §Observability) is that when
the flag is off, instrumented code performs *one attribute check and
nothing else* — no span objects, no metric lookups, no string
formatting — so the hot kernels benchmarked in ``BENCH_kernels.json``
pay effectively nothing for being observable.

This module owns only the flag (plus enable/disable helpers) so that
``obs.trace``, ``obs.metrics``, and ``obs.telemetry`` can share it
without import cycles through the package ``__init__``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class ObservabilityState:
    """Mutable process-global switch (attribute reads stay live)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


STATE = ObservabilityState()


def is_enabled() -> bool:
    return STATE.enabled


def enable() -> None:
    """Turn instrumentation on process-wide."""
    STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off process-wide."""
    STATE.enabled = False


@contextmanager
def observed(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) observability, restoring on exit."""
    previous = STATE.enabled
    STATE.enabled = on
    try:
        yield
    finally:
        STATE.enabled = previous
