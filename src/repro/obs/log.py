"""Console output and structured logging for library code.

Library modules must not call bare ``print`` (enforced by
``scripts/check_no_print.sh``); the two sanctioned channels are:

* :func:`console` — human-facing console output (benchmark tables, CLI
  helpers). A thin ``sys.stdout`` wrapper, so ``capsys``/redirection
  behave exactly as with ``print``.
* :func:`log` — structured events. Routed onto the ``"log"`` telemetry
  stream when observability is enabled, dropped otherwise; library code
  can therefore log unconditionally without spamming stdout.

Events carry a severity level (``debug`` < ``info`` < ``warn`` <
``error``); :func:`set_level` filters what reaches the telemetry sink.
The default threshold is ``info``, so existing level-less ``log()``
calls (which default to ``info``) keep emitting exactly as before while
``debug`` chatter stays off unless explicitly requested.
"""

from __future__ import annotations

import sys
from typing import Any

from . import telemetry
from .runtime import STATE

#: Severity order; the threshold drops events strictly below it.
_LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_DEFAULT_LEVEL = "info"
_threshold = _LEVELS[_DEFAULT_LEVEL]


def _rank(level: str) -> int:
    try:
        return _LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def set_level(level: str) -> None:
    """Set the minimum level that reaches the telemetry stream."""
    global _threshold
    _threshold = _rank(level)


def get_level() -> str:
    """The current threshold's name."""
    for name, rank in _LEVELS.items():
        if rank == _threshold:
            return name
    return _DEFAULT_LEVEL


def reset() -> None:
    """Restore the default ``info`` threshold (tests / run boundaries)."""
    global _threshold
    _threshold = _LEVELS[_DEFAULT_LEVEL]


def console(message: object = "") -> None:
    """Write one line to stdout (the only sanctioned console channel)."""
    sys.stdout.write(f"{message}\n")


def log(event: str, level: str = _DEFAULT_LEVEL, **fields: Any) -> None:
    """Emit a structured log event onto the telemetry stream.

    ``level`` must be one of ``debug``/``info``/``warn``/``error``
    (ValueError otherwise — a typo silently vanishing into the default
    would hide the very events someone marked important). Events below
    the :func:`set_level` threshold are dropped; nothing is ever written
    to stdout.
    """
    rank = _rank(level)
    if STATE.enabled and rank >= _threshold:
        telemetry.emit("log", event=event, level=level, **fields)
