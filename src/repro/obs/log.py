"""Console output and structured logging for library code.

Library modules must not call bare ``print`` (enforced by
``scripts/check_no_print.sh``); the two sanctioned channels are:

* :func:`console` — human-facing console output (benchmark tables, CLI
  helpers). A thin ``sys.stdout`` wrapper, so ``capsys``/redirection
  behave exactly as with ``print``.
* :func:`log` — structured events. Routed onto the ``"log"`` telemetry
  stream when observability is enabled, dropped otherwise; library code
  can therefore log unconditionally without spamming stdout.
"""

from __future__ import annotations

import sys
from typing import Any

from . import telemetry
from .runtime import STATE


def console(message: object = "") -> None:
    """Write one line to stdout (the only sanctioned console channel)."""
    sys.stdout.write(f"{message}\n")


def log(event: str, **fields: Any) -> None:
    """Emit a structured log event onto the telemetry stream."""
    if STATE.enabled:
        telemetry.emit("log", event=event, **fields)
