"""Answer-quality accounting: shadow audits and calibration drift.

The paper's contract is not "fast queries" but *approximate answers
whose quality is quantified* (Eq. 1 recall against the frame, Eq. 2
aggregate relative error). This module closes the loop at serving time:

* **Per-query accounting** — every query served on a recorded run
  reports its predicted answerability (the estimator's confidence)
  against the realized frame score; the pair lands in the
  ``quality.calibration`` histogram and feeds a rolling drift detector.
* **Shadow auditing** — a deterministic fraction of approximation-set
  answers (chosen by trace-id hash, like tail-sampling's head coin) is
  re-executed against the full database by the session; the measured
  recall and aggregate relative error arrive here and become
  ``quality.recall`` / ``quality.agg_rel_error`` histogram samples
  (with worst-quality trace-id exemplars), ``quality`` telemetry
  records, and rows of a bounded in-memory audit table.
* **Calibration drift** — the signed bias between predicted and
  observed answerability over a rolling window; sustained bias raises
  WARN/CRIT health alerts (rule ``quality_calibration_drift``) and is
  reported back to the session so :mod:`repro.core.drift` records the
  event on the ``drift`` telemetry stream.

Audit cost is bounded by construction: a budget governor skips audits
once cumulative audit time exceeds ``max_overhead`` (default 1%) of
cumulative serving time, so the ``--audit-check`` bench gate holds at
the default sample rate no matter how expensive ground truth is.

The dependency rule of the obs package holds: this module never imports
``repro.core`` or ``repro.db`` — the session executes shadow queries
and reports plain numbers here. The ``quality`` telemetry stream has a
single producer (this module, through the :mod:`repro.obs.telemetry`
O_APPEND chokepoint); the ``quality-telemetry-sink-only`` lint rule
enforces that.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from . import context as _context
from . import health as _health
from . import metrics as _metrics
from . import telemetry as _telemetry

#: Artifact name inside a run directory.
QUALITY_FILE = "quality.json"

#: Fraction of approximation-set answers shadow-audited by default.
DEFAULT_AUDIT_RATE = 0.1

#: Budget governor: cumulative audit time may not exceed this fraction
#: of cumulative serving time (the first audit is always allowed).
DEFAULT_MAX_OVERHEAD = 0.01

#: Audited recall below this marks the trace low-quality (tail-sampler
#: keep reason, ``low_quality`` root-span attribute).
LOW_QUALITY_RECALL = 0.8

#: Calibration-drift window and bias thresholds (|mean(predicted) -
#: mean(observed)| over the last `window` approximation-set answers).
DRIFT_WINDOW = 32
DRIFT_MIN_WINDOW = 8
DRIFT_WARN_BIAS = 0.20
DRIFT_CRIT_BIAS = 0.35

#: Rows kept in the in-memory audit table (oldest evicted first).
MAX_AUDIT_ROWS = 256

#: Lower-bound objectives installed when auditing is the point of the
#: run (`repro audit --smoke`); they ride the standard burn pipeline.
QUALITY_OBJECTIVES = (
    "quality.recall.p10 > 0.85 @ 90%",
    "quality.agg_rel_error.p95 < 0.25 @ 90%",
)


def validate_rate(rate: Any, source: str = "audit sample rate") -> float:
    """Contract check for the audit sample rate: a number in [0, 1].

    Unlike ``REPRO_TRACE_HEAD_RATE`` (which clamps silently — dropping
    traces is harmless), a bad audit rate silently disabling ground
    truth would be a correctness bug, so out-of-range values are
    rejected loudly.
    """
    try:
        value = float(rate)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a number in [0, 1], got {rate!r}"
        ) from None
    if not 0.0 <= value <= 1.0:  # also rejects NaN
        raise ValueError(f"{source} must be within [0, 1], got {rate!r}")
    return value


def rate_from_env(default: float = DEFAULT_AUDIT_RATE) -> float:
    """Audit rate from ``REPRO_AUDIT_RATE`` (validated) or the default."""
    raw = os.environ.get("REPRO_AUDIT_RATE")
    if raw is None or raw == "":
        return default
    return validate_rate(raw, source="REPRO_AUDIT_RATE")


def _audit_keep(trace_id: str, rate: float) -> bool:
    """Deterministic audit coin: a hash window of the trace id.

    Mirrors tail-sampling's head coin but reads a *different* 8-hex
    window (chars 8..16), so whether a trace is audited is independent
    of whether it is head-kept.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    window = trace_id[8:16] or trace_id[:8]
    return int(window, 16) % 10_000 < int(rate * 10_000)


@dataclass
class CalibrationDrift:
    """A fired calibration-drift escalation."""

    bias: float            # signed mean(predicted) - mean(observed)
    mean_predicted: float
    mean_observed: float
    window: int
    severity: str          # health.WARN or health.CRIT


class QualityMonitor:
    """Per-run quality accounting, shadow-audit bookkeeping, and drift.

    The session is the only writer: it calls :meth:`observe_query` for
    every answered query, asks :meth:`should_audit` for the coin, runs
    the shadow execution itself (this module never touches a database),
    and lands the measurement via :meth:`record_audit`.
    """

    def __init__(
        self,
        sample_rate: float = DEFAULT_AUDIT_RATE,
        max_overhead: Optional[float] = DEFAULT_MAX_OVERHEAD,
        low_quality_recall: float = LOW_QUALITY_RECALL,
        drift_window: int = DRIFT_WINDOW,
        drift_min_window: int = DRIFT_MIN_WINDOW,
        warn_bias: float = DRIFT_WARN_BIAS,
        crit_bias: float = DRIFT_CRIT_BIAS,
        max_audit_rows: int = MAX_AUDIT_ROWS,
    ) -> None:
        self.sample_rate = validate_rate(sample_rate)
        self.max_overhead = max_overhead
        self.low_quality_recall = low_quality_recall
        self.drift_min_window = drift_min_window
        self.warn_bias = warn_bias
        self.crit_bias = crit_bias
        self.counts: dict[str, int] = {
            "queries": 0,
            "approx_queries": 0,
            "audits": 0,
            "low_quality": 0,
            "skipped_coin": 0,
            "skipped_budget": 0,
            "drift_events": 0,
        }
        self.serving_seconds = 0.0
        self.audit_seconds = 0.0
        self._last_audit_cost = 0.0
        self._recall_sum = 0.0
        self._agg_error_sum = 0.0
        self._agg_error_count = 0
        #: Rolling predicted/observed pairs for approximation answers.
        #: Window sums are maintained incrementally: ``_check_drift``
        #: runs on every approximation answer, and re-summing the
        #: window there is what the ``--audit-check`` gate would pay.
        self._predicted: deque[float] = deque(maxlen=drift_window)
        self._observed: deque[float] = deque(maxlen=drift_window)
        self._predicted_sum = 0.0
        self._observed_sum = 0.0
        #: Escalation dedup, same scheme as the SLO tracker.
        self._drift_published: Optional[str] = None
        #: Bounded audit table: newest MAX_AUDIT_ROWS measurements.
        self.audit_log: deque[dict[str, Any]] = deque(maxlen=max_audit_rows)

    # -- per-query accounting ---------------------------------------- #
    def observe_query(
        self,
        predicted: float,
        observed: float,
        used_approximation: bool,
        elapsed_seconds: float = 0.0,
    ) -> Optional[CalibrationDrift]:
        """Record one answered query; returns a drift event on escalation."""
        self.counts["queries"] += 1
        self.serving_seconds += max(0.0, elapsed_seconds)
        _metrics.observe("quality.calibration", abs(predicted - observed))
        if not used_approximation:
            return None
        self.counts["approx_queries"] += 1
        if len(self._predicted) == self._predicted.maxlen:
            self._predicted_sum -= self._predicted[0]
            self._observed_sum -= self._observed[0]
        self._predicted.append(float(predicted))
        self._observed.append(float(observed))
        self._predicted_sum += float(predicted)
        self._observed_sum += float(observed)
        return self._check_drift()

    def _check_drift(self) -> Optional[CalibrationDrift]:
        n = len(self._predicted)
        if n < self.drift_min_window:
            return None
        mean_predicted = self._predicted_sum / n
        mean_observed = self._observed_sum / n
        bias = mean_predicted - mean_observed
        _metrics.set_gauge("quality.calibration_bias", bias)
        if abs(bias) >= self.crit_bias:
            severity: Optional[str] = _health.CRIT
        elif abs(bias) >= self.warn_bias:
            severity = _health.WARN
        else:
            severity = None
        order = {None: 0, _health.WARN: 1, _health.CRIT: 2}
        if order[severity] <= order[self._drift_published]:
            if severity is None:
                self._drift_published = None  # re-arm after recovery
            return None
        self._drift_published = severity
        drift = CalibrationDrift(
            bias=bias,
            mean_predicted=mean_predicted,
            mean_observed=mean_observed,
            window=n,
            severity=severity,
        )
        self.counts["drift_events"] += 1
        _metrics.add("quality.drift_events")
        direction = "over" if bias > 0 else "under"
        _health.active_monitor().publish([_health.Alert(
            severity,
            "quality_calibration_drift",
            f"estimator confidence {direction}-predicts realized answer "
            f"quality: predicted-vs-observed bias {bias:+.2f} over the "
            f"last {n} approximation answers "
            f"(mean predicted {mean_predicted:.2f}, "
            f"mean observed {mean_observed:.2f})",
            value=bias,
            threshold=self.crit_bias if severity == _health.CRIT
            else self.warn_bias,
        )])
        _telemetry.emit(
            "quality",
            kind="calibration_drift",
            bias=bias,
            mean_predicted=mean_predicted,
            mean_observed=mean_observed,
            window=n,
            severity=severity,
        )
        return drift

    # -- shadow-audit decision ---------------------------------------- #
    def should_audit(self, trace_id: Optional[str]) -> bool:
        """Deterministic coin plus the overhead budget governor.

        The budget is conservative: beyond the always-allowed first
        audit, an audit is admitted only if the budget covers the spent
        audit time *plus* one more audit at the last observed cost —
        admitting on a just-recovered budget would overshoot it by a
        full audit every time, and the ``--audit-check`` bench gates
        the realized fraction, not the intent.
        """
        if trace_id is None:
            return False
        if not _audit_keep(trace_id, self.sample_rate):
            self.counts["skipped_coin"] += 1
            return False
        if (
            self.max_overhead is not None
            and self.audit_seconds + self._last_audit_cost
            > self.max_overhead * self.serving_seconds
        ):
            self.counts["skipped_budget"] += 1
            return False
        return True

    # -- audit measurement -------------------------------------------- #
    def record_audit(
        self,
        recall: float,
        predicted: float,
        observed: float,
        agg_rel_error: Optional[float] = None,
        cost_seconds: float = 0.0,
        sql: str = "",
        trace_id: Optional[str] = None,
    ) -> bool:
        """Land one shadow-audit measurement; True if it was low quality."""
        trace_id = trace_id or _context.current_trace_id()
        self.counts["audits"] += 1
        self.audit_seconds += max(0.0, cost_seconds)
        self._last_audit_cost = max(0.0, cost_seconds)
        self._recall_sum += recall
        _metrics.observe("quality.recall", recall)
        if agg_rel_error is not None:
            self._agg_error_sum += agg_rel_error
            self._agg_error_count += 1
            _metrics.observe("quality.agg_rel_error", agg_rel_error)
        low_quality = recall < self.low_quality_recall
        if low_quality:
            self.counts["low_quality"] += 1
            _metrics.add("quality.low_quality_audits")
        _metrics.set_gauge(
            "quality.audit_overhead_fraction", self.overhead_fraction()
        )
        _telemetry.emit(
            "quality",
            kind="audit",
            sql=sql[:200],
            predicted=predicted,
            observed=observed,
            recall=recall,
            agg_rel_error=agg_rel_error,
            cost_seconds=cost_seconds,
            low_quality=low_quality,
        )
        self.audit_log.append({
            "trace_id": trace_id,
            "sql": sql[:200],
            "predicted": predicted,
            "observed": observed,
            "recall": recall,
            "agg_rel_error": agg_rel_error,
            "cost_seconds": cost_seconds,
            "low_quality": low_quality,
        })
        return low_quality

    # -- read side ----------------------------------------------------- #
    def overhead_fraction(self) -> float:
        if self.serving_seconds <= 0.0:
            return 0.0
        return self.audit_seconds / self.serving_seconds

    def calibration_bias(self) -> Optional[float]:
        n = len(self._predicted)
        if n == 0:
            return None
        return (self._predicted_sum - self._observed_sum) / n

    def summary(self) -> dict[str, Any]:
        audits = self.counts["audits"]
        return {
            "sample_rate": self.sample_rate,
            "max_overhead": self.max_overhead,
            "low_quality_recall": self.low_quality_recall,
            "counts": dict(self.counts),
            "mean_recall": self._recall_sum / audits if audits else None,
            "mean_agg_rel_error": (
                self._agg_error_sum / self._agg_error_count
                if self._agg_error_count else None
            ),
            "calibration_bias": self.calibration_bias(),
            "serving_seconds": self.serving_seconds,
            "audit_seconds": self.audit_seconds,
            "overhead_fraction": self.overhead_fraction(),
            "audit_log": list(self.audit_log),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, default=str)


# ------------------------------------------------------------------ #
# module-level singleton (one monitor per observability run)
# ------------------------------------------------------------------ #
#: Bounded: holds at most the one configured monitor (see `clear`).
_ACTIVE: list[QualityMonitor] = []


def configure(
    sample_rate: Optional[float] = None,
    **kwargs: Any,
) -> QualityMonitor:
    """Install a quality monitor; rate defaults to ``REPRO_AUDIT_RATE``."""
    clear()
    if sample_rate is None:
        sample_rate = rate_from_env()
    monitor = QualityMonitor(sample_rate=sample_rate, **kwargs)
    _ACTIVE.append(monitor)
    return monitor


def install(monitor: QualityMonitor) -> QualityMonitor:
    """Install an existing monitor (vs ``configure``'s fresh one).

    For callers that build the monitor first — tests installing one
    with tight drift windows, or a harness re-arming the same monitor
    so the budget governor's cumulative accounting persists across an
    uninstalled phase.
    """
    clear()
    _ACTIVE.append(monitor)
    return monitor


def active() -> Optional[QualityMonitor]:
    return _ACTIVE[0] if _ACTIVE else None


def is_active() -> bool:
    return bool(_ACTIVE)


def clear() -> None:
    _ACTIVE.clear()


def write_json(path: str) -> None:
    if _ACTIVE:
        _ACTIVE[0].write_json(path)
