"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``   — train on a bundled dataset and run a short query session.
``train``  — train ASQP-RL and save the model directory.
``query``  — load a saved model and answer one SQL query.
``explain`` — print the operator tree of a SQL query (``--analyze`` runs it).
``report`` — fuse a recorded run + bench trajectory into one artifact.
``bench``  — print the location and contents of recorded benchmark tables.
``stats``  — pretty-print the metrics + telemetry of a recorded run.
``trace``  — pretty-print the span tree of a recorded run.
``profile`` — run any other command under the continuous sampling
profiler + memory tracker + default SLOs (flamegraph, collapsed stacks,
memory.json, slo.json land in the run directory).
``top``    — live-refreshing terminal view of a (possibly still running)
profiled run: SLO burn, hot functions, span attribution, memory.
``watch``  — live ops console over a run directory: rolling QPS/p50/p95,
worker utilization bars, shed/fallback counts, answer quality, active
SLO burn alerts.
``audit``  — shadow-audit view of a recorded run: audit accounting and
the predicted-vs-observed calibration table (see repro.obs.quality).
``lint``   — run the AST rule pack over source paths (see repro.lint).

``demo``/``train`` accept ``--telemetry DIR`` to record a full
observability run (trace.json, trace_chrome.json, metrics.json,
telemetry.jsonl) that ``stats``/``trace`` read back, and ``--strict``
to enable the runtime shape/NaN contracts (same as ``REPRO_STRICT=1``).

Unknown subcommands exit with status 2 and the available-command list
(argparse's required-subparser behaviour, pinned by ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__, contracts, obs
from .core import ASQPConfig, ASQPSession, ASQPTrainer, load_model, save_model, score
from .datasets import load_flights, load_imdb, load_mas
from .db import explain as db_explain, split_explain, sql
from .lint import cli as lint_cli
from .obs import telemetry as obs_telemetry
from .obs import trace as obs_trace
from .obs.clock import perf_counter

#: Default run directory for --telemetry / stats / trace.
DEFAULT_OBS_DIR = "obs_run"

_LOADERS = {"imdb": load_imdb, "mas": load_mas, "flights": load_flights}


def _load_bundle(name: str, scale: float):
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; choose from {sorted(_LOADERS)}"
        )
    return loader(scale=scale)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="imdb", help="imdb | mas | flights")
    parser.add_argument("--scale", type=float, default=0.3, help="dataset size scale")
    parser.add_argument("--k", type=int, default=600, help="memory budget (tuples)")
    parser.add_argument("--frame-size", type=int, default=50, help="frame size F")
    parser.add_argument("--iterations", type=int, default=25, help="PPO iterations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--light", action="store_true", help="use ASQP-Light settings")
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record an observability run (trace + metrics + telemetry JSONL) "
             "into DIR; read it back with `repro stats`/`repro trace`",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="enable runtime shape/dtype/NaN contracts (repro.contracts; "
             "same as REPRO_STRICT=1)",
    )


def _make_config(args) -> ASQPConfig:
    overrides = dict(
        memory_budget=args.k,
        frame_size=args.frame_size,
        n_iterations=args.iterations,
        learning_rate=1e-3,
        seed=args.seed,
    )
    return ASQPConfig.light(**overrides) if args.light else ASQPConfig(**overrides)


def cmd_demo(args) -> int:
    if args.strict:
        contracts.enable()
    if args.telemetry:
        obs.start_run(args.telemetry)
    bundle = _load_bundle(args.dataset, args.scale)
    print(f"dataset: {bundle.db}")
    config = _make_config(args)
    print(f"training {'ASQP-Light' if args.light else 'ASQP-RL'} "
          f"(k={config.memory_budget}, F={config.frame_size})...")
    start = perf_counter()
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    print(f"trained in {perf_counter() - start:.1f}s")
    session = ASQPSession(model, auto_fine_tune=False)
    train_quality = score(bundle.db, session.approx_db, bundle.workload,
                          config.frame_size)
    print(f"workload quality (Eq. 1): {train_quality:.3f}")
    for query in list(bundle.workload)[:3]:
        outcome = session.query(query)
        source = "approx" if outcome.used_approximation else "full DB"
        print(f"  {query.to_sql()[:70]}...")
        print(f"    -> {len(outcome)} rows via {source} "
              f"({outcome.elapsed_seconds * 1000:.1f}ms)")
    if args.telemetry:
        paths = obs.finish_run(args.telemetry)
        print(f"observability run recorded in {args.telemetry}/ "
              f"({', '.join(sorted(os.path.basename(p) for p in paths.values()))})")
        print(f"inspect with: repro stats --dir {args.telemetry}  |  "
              f"repro trace --dir {args.telemetry}")
    return 0


def cmd_train(args) -> int:
    if args.strict:
        contracts.enable()
    if args.telemetry:
        obs.start_run(args.telemetry)
    bundle = _load_bundle(args.dataset, args.scale)
    config = _make_config(args)
    print(f"training on {bundle.db} ...")
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    save_model(model, args.out)
    print(f"model saved to {args.out} "
          f"(setup {model.setup_seconds:.1f}s, "
          f"{len(model.action_space)} actions)")
    if args.telemetry:
        obs.finish_run(args.telemetry)
        print(f"observability run recorded in {args.telemetry}/")
    return 0


def cmd_query(args) -> int:
    bundle = _load_bundle(args.dataset, args.scale)
    model = load_model(args.model, bundle.db)
    session = ASQPSession(model, auto_fine_tune=False)
    query = sql(args.sql)
    outcome = session.query(query)
    source = "approximation set" if outcome.used_approximation else "full database"
    print(f"{len(outcome)} rows from the {source} "
          f"(confidence {outcome.estimate.confidence:.2f}, "
          f"{outcome.elapsed_seconds * 1000:.1f}ms)")
    if hasattr(outcome.result, "rows"):
        for row in outcome.result.rows[:10]:
            print(f"  {row}")
    else:
        for row in outcome.result.to_rows()[:10]:
            print(f"  {row}")
    return 0


def cmd_explain(args) -> int:
    """Print the operator tree (EXPLAIN) of one SQL query."""
    text, _, prefix_analyze = split_explain(args.sql)
    analyze = args.analyze or prefix_analyze
    bundle = _load_bundle(args.dataset, args.scale)
    query = sql(text)
    if args.telemetry:
        obs.start_run(args.telemetry)
    plan = db_explain(bundle.db, query, analyze=analyze)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2, default=str))
    else:
        print(plan.format())
    if args.telemetry:
        obs.finish_run(args.telemetry)
        print(f"observability run recorded in {args.telemetry}/")
    return 0


def cmd_report(args) -> int:
    """Build the fused diagnostic report (see repro.obs.report)."""
    from .obs.report import build_report, run_smoke

    run_dir = args.dir
    if args.smoke:
        run_dir = run_smoke(args.dir)
    elif not any(
        os.path.exists(os.path.join(run_dir, name))
        for name in (obs.TELEMETRY_FILE, obs.METRICS_FILE, obs.TRACE_FILE)
    ):
        # Without at least one run artifact the report would render a
        # misleading all-empty document; fail like stats/trace/top do.
        return _missing_run(run_dir)
    path = build_report(
        run_dir,
        out_path=args.out,
        html=args.html,
        bench_dir=args.bench_dir,
    )
    print(f"report written to {path}")
    return 0


def cmd_bench(args) -> int:
    import glob
    import os

    from .bench.reporting import results_dir

    directory = results_dir()
    tables = sorted(glob.glob(os.path.join(directory, "*.txt")))
    if not tables:
        print(f"no recorded tables under {directory}/ — run:")
        print("  pytest benchmarks/ --benchmark-only -s")
        return 1
    for path in tables:
        with open(path) as handle:
            print(handle.read())
    return 0


def _missing_run(directory: str) -> int:
    """Shared exit-1 path for readers pointed at a absent/empty run dir."""
    print(f"no observability run under {directory}/ — record one with:")
    print(f"  python -m repro demo --light --telemetry {directory}")
    print(f"  python -m repro profile --dir {directory} demo --light")
    return 1


def _load_run_json(path: str):
    """Parse one run artifact; None when absent, SystemExit(1) when corrupt."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (json.JSONDecodeError, OSError) as error:
        print(f"unreadable run artifact {path}: {error}")
        print("re-record the run, or delete the directory and retry")
        raise SystemExit(1)


def cmd_stats(args) -> int:
    """Pretty-print metrics.json + telemetry.jsonl of a recorded run."""
    from .bench.reporting import format_table

    metrics_path = os.path.join(args.dir, obs.METRICS_FILE)
    telemetry_path = os.path.join(args.dir, obs.TELEMETRY_FILE)
    if not os.path.exists(metrics_path) and not os.path.exists(telemetry_path):
        return _missing_run(args.dir)

    snap = _load_run_json(metrics_path)
    if snap is not None:
        counters = sorted({**snap.get("counters", {}), **snap.get("gauges", {})}.items())
        if counters:
            print(format_table(
                ["counter/gauge", "value"],
                [[name, value] for name, value in counters],
                title=f"Metrics — {metrics_path}",
            ))
        histograms = sorted(snap.get("histograms", {}).items())
        if histograms:
            print()
            print(format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                [
                    [name, h.get("count"), h.get("mean"), h.get("p50"),
                     h.get("p95"), h.get("p99"), h.get("max")]
                    for name, h in histograms
                ],
            ))

    if os.path.exists(telemetry_path):
        # load_run reads the whole rotated set (telemetry.1.jsonl, ...),
        # so long runs that rolled the sink still show every record.
        records = obs_telemetry.load_run(telemetry_path)
        updates = [r for r in records if r.get("stream") == "train.update"]
        if updates:
            tail = updates[-args.last:]
            print()
            print(format_table(
                ["iter", "reward", "policy", "value", "entropy", "kl",
                 "clip%", "steps/s"],
                [
                    [u.get("iteration"), u.get("mean_episode_reward"),
                     u.get("policy_loss"), u.get("value_loss"),
                     u.get("entropy"), u.get("kl_divergence"),
                     100.0 * float(u.get("clip_fraction") or 0.0),
                     u.get("steps_per_second")]
                    for u in tail
                ],
                title=f"Training — last {len(tail)} of {len(updates)} updates",
            ))
        outcomes = [r for r in records if r.get("stream") == "query"]
        if outcomes:
            tail = outcomes[-args.last:]
            print()
            print(format_table(
                ["source", "conf", "realized", "rows", "ms", "drift"],
                [
                    ["approx" if o.get("used_approximation") else "full",
                     o.get("confidence"), o.get("realized_frame_score"),
                     o.get("rows"),
                     1e3 * float(o.get("elapsed_seconds") or 0.0),
                     "DRIFT" if o.get("drift") else ""]
                    for o in tail
                ],
                title=f"Queries — last {len(tail)} of {len(outcomes)} outcomes",
            ))
    return 0


def cmd_trace(args) -> int:
    """Pretty-print the span tree of a recorded run."""
    trace_path = os.path.join(args.dir, obs.TRACE_FILE)
    if not os.path.exists(trace_path):
        return _missing_run(args.dir)
    nodes = _load_run_json(trace_path)
    if not isinstance(nodes, list):
        print(f"unreadable run artifact {trace_path}: expected a span list")
        return 1
    print(f"trace — {trace_path} ({len(nodes)} root spans)")
    print(obs_trace.format_tree(nodes, max_depth=args.depth))
    chrome_path = os.path.join(args.dir, obs.CHROME_TRACE_FILE)
    if os.path.exists(chrome_path):
        print(f"\nchrome://tracing / perfetto file: {chrome_path}")
    return 0


def cmd_analyze(args) -> int:
    """Reconstruct and analyze retained traces of a recorded run."""
    from .obs import analyze as obs_analyze

    traces_path = os.path.join(args.dir, obs.TRACES_FILE)
    trace_path = os.path.join(args.dir, obs.TRACE_FILE)
    if not os.path.exists(traces_path) and not os.path.exists(trace_path):
        return _missing_run(args.dir)
    entries = obs_analyze.load_traces(args.dir)
    if not entries:
        print(f"no retained traces under {args.dir}/ — traces need ids; "
              "record the run with observability enabled")
        return 1

    if args.trace:
        entry = obs_analyze.find_trace(entries, args.trace)
        if entry is None:
            print(f"trace {args.trace!r} not found in {args.dir}/ "
                  f"({len(entries)} retained traces; try --slowest)")
            return 1
        print(obs_analyze.format_trace_entry(entry))
        return 0

    summary = obs_analyze.sampler_summary(args.dir)
    counts = (summary or {}).get("counts") or {}
    if counts:
        kept = sum(v for k, v in counts.items() if k.startswith("kept_"))
        print(f"tail sampler: {counts.get('offered', 0)} offered, "
              f"{kept} kept, {counts.get('dropped_head', 0)} head-dropped, "
              f"{counts.get('evicted', 0)} evicted")
        print()
    shown = obs_analyze.slowest(entries, args.slowest)
    print(f"slowest {len(shown)} of {len(entries)} retained traces:")
    print()
    for entry in shown:
        print(obs_analyze.format_trace_entry(entry))
        print()
    rollup = obs_analyze.aggregate_spans(shown)
    ranked = sorted(rollup.items(), key=lambda kv: -kv[1]["self_s"])[:10]
    if ranked:
        print("per-span self time across shown traces:")
        for name, row in ranked:
            print(f"  {name:<44} ×{row['count']:<4.0f}"
                  f" total {row['total_s'] * 1e3:9.3f} ms"
                  f"  self {row['self_s'] * 1e3:9.3f} ms")
    return 0


def cmd_diff(args) -> int:
    """Compare span latencies between two recorded runs."""
    from .obs import analyze as obs_analyze

    for run_dir in (args.run_a, args.run_b):
        if not os.path.exists(os.path.join(run_dir, obs.TRACE_FILE)):
            return _missing_run(run_dir)
    diff = obs_analyze.diff_runs(args.run_a, args.run_b)
    print(f"span latency diff: {args.run_a} -> {args.run_b}")
    header = (f"  {'span':<44} {'n(a)':>5} {'n(b)':>5} "
              f"{'p50 a→b ms':>21} {'p95 a→b ms':>21}  verdict")
    print(header)
    for row in diff["spans"]:
        if "p95_a" in row:
            p50 = (f"{row['p50_a'] * 1e3:9.3f}→{row['p50_b'] * 1e3:9.3f}")
            p95 = (f"{row['p95_a'] * 1e3:9.3f}→{row['p95_b'] * 1e3:9.3f}")
        else:
            p50 = p95 = "-"
        print(f"  {row['name']:<44} {row['count_a']:>5} {row['count_b']:>5} "
              f"{p50:>21} {p95:>21}  {row['verdict']}")
    print(f"verdict: {diff['verdict']}")
    return 0


def cmd_profile(args) -> int:
    """Run another CLI command under profiler + memory tracker + SLOs."""
    from .obs import slo as obs_slo

    rest = [token for token in args.cmd if token != "--"]
    if not rest:
        print("usage: repro profile [--dir DIR] [--hz N] <command> [args...]")
        print("example: repro profile --dir prof_run demo --light --scale 0.15")
        return 2
    if rest[0] in ("profile", "top", "watch"):
        print(f"refusing to profile `repro {rest[0]}` (nested run)")
        return 2
    objectives = args.slo if args.slo else list(obs_slo.DEFAULT_OBJECTIVES)
    code = 0
    with obs.run(
        args.dir,
        profile=True,
        profile_hz=args.hz,
        memory_tracking=not args.no_memory,
        slo_objectives=objectives,
    ):
        try:
            code = main(rest)
        except SystemExit as exit_request:  # argparse errors and friends
            raised = exit_request.code
            code = raised if isinstance(raised, int) else 1
    print(f"\nprofile recorded in {args.dir}/:")
    for name in (
        obs.PROFILE_COLLAPSED_FILE, obs.FLAMEGRAPH_FILE,
        obs.SLO_FILE, obs.MEMORY_FILE, obs.METRICS_FILE,
    ):
        path = os.path.join(args.dir, name)
        if os.path.exists(path):
            print(f"  {path}")
    print(f"watch live next time with: repro top --dir {args.dir}")
    return code


def cmd_top(args) -> int:
    """Live terminal view of a profiled run directory."""
    import time

    from .obs.report import render_top

    if not os.path.isdir(args.dir):
        return _missing_run(args.dir)
    iterations = 1 if args.once else args.iterations
    remaining = iterations
    while True:
        frame = render_top(args.dir)
        if not args.once:
            print("\033[2J\033[H", end="")
        print(frame)
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_watch(args) -> int:
    """Live ops console over a run directory (QPS, workers, SLO burn)."""
    import time

    from .obs.watch import render_watch

    if not os.path.isdir(args.dir):
        return _missing_run(args.dir)
    iterations = 1 if args.once else args.iterations
    remaining = iterations
    while True:
        frame = render_watch(args.dir)
        if not args.once:
            print("\033[2J\033[H", end="")
        print(frame)
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_audit(args) -> int:
    """Answer-quality audit view over a recorded run (repro.obs.quality).

    Reads the ``quality`` telemetry stream plus ``quality.json`` and
    prints the shadow-audit accounting and a predicted-vs-observed
    calibration table. ``--smoke`` first records a micro end-to-end run
    with auditing enabled (rate 1.0 unless ``--sample-rate`` is given).
    """
    from .bench.reporting import format_table
    from .obs import quality as obs_quality

    try:
        rate = (
            obs_quality.validate_rate(args.sample_rate)
            if args.sample_rate is not None
            else None
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    run_dir = args.dir
    if args.smoke:
        from .obs.report import run_smoke

        run_dir = run_smoke(run_dir, audit_rate=1.0 if rate is None else rate)
        print(f"smoke run with shadow auditing recorded in {run_dir}/\n")
    telemetry_path = os.path.join(run_dir, obs.TELEMETRY_FILE)
    if not os.path.exists(telemetry_path):
        return _missing_run(run_dir)

    records = obs_telemetry.load_run(telemetry_path)
    quality_records = [r for r in records if r.get("stream") == "quality"]
    audits = [r for r in quality_records if r.get("kind") == "audit"]
    drifts = [
        r for r in quality_records if r.get("kind") == "calibration_drift"
    ]
    quality_doc = _load_run_json(os.path.join(run_dir, obs.QUALITY_FILE))
    if not quality_records and not quality_doc:
        print(
            f"no audit data recorded in {run_dir}/ — "
            "answer quality is unverified; record one with:"
        )
        print(f"  python -m repro audit --dir {run_dir} --smoke")
        print(
            "or enable auditing on any recorded run with "
            "REPRO_AUDIT_RATE (default "
            f"{obs_quality.DEFAULT_AUDIT_RATE})"
        )
        return 1

    counts = (quality_doc or {}).get("counts", {})
    if counts:
        recall = quality_doc.get("mean_recall")
        bias = quality_doc.get("calibration_bias")
        print(
            f"{counts.get('queries', 0)} queries "
            f"({counts.get('approx_queries', 0)} approx), "
            f"{counts.get('audits', 0)} audited "
            f"[coin-skipped {counts.get('skipped_coin', 0)}, "
            f"budget-skipped {counts.get('skipped_budget', 0)}] | "
            f"overhead "
            f"{float(quality_doc.get('overhead_fraction') or 0.0):.2%}"
        )
        print(
            "mean audited recall "
            + (f"{float(recall):.3f}" if recall is not None else "-")
            + " | calibration bias "
            + (f"{float(bias):+.3f}" if bias is not None else "-")
            + f" | low-quality {counts.get('low_quality', 0)}"
            + f" | drift events {counts.get('drift_events', 0)}"
        )
    for record in drifts:
        print(
            f"calibration drift {record.get('severity', '?')}: "
            f"bias {float(record.get('bias', 0.0)):+.2f} over "
            f"{record.get('window', '?')} approximation answers"
        )

    pairs = [
        r for r in audits
        if r.get("predicted") is not None and r.get("observed") is not None
    ]
    if pairs:
        bins = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.01))
        rows = []
        for low, high in bins:
            binned = [
                r for r in pairs if low <= float(r["predicted"]) < high
            ]
            if not binned:
                continue
            mean_pred = sum(float(r["predicted"]) for r in binned) / len(binned)
            mean_obs = sum(float(r["observed"]) for r in binned) / len(binned)
            rows.append([
                f"[{low:.2f}, {min(high, 1.0):.2f})",
                len(binned),
                f"{mean_pred:.3f}",
                f"{mean_obs:.3f}",
                f"{mean_pred - mean_obs:+.3f}",
            ])
        print()
        print(format_table(
            ["predicted bin", "audits", "mean predicted",
             "mean observed", "bias"],
            rows,
            title="Calibration — predicted confidence vs audited quality",
        ))
        worst = sorted(
            audits, key=lambda r: float(r.get("recall", 1.0))
        )[:args.last]
        print()
        print(format_table(
            ["trace", "recall", "agg rel err", "predicted", "sql"],
            [
                [
                    str(r.get("trace_id", "?"))[:16],
                    f"{float(r.get('recall', 0.0)):.3f}",
                    (
                        f"{float(r['agg_rel_error']):.3f}"
                        if r.get("agg_rel_error") is not None
                        else "-"
                    ),
                    f"{float(r.get('predicted', 0.0)):.3f}",
                    str(r.get("sql", ""))[:48],
                ]
                for r in worst
            ],
            title=f"Worst {len(worst)} audited answers "
                  "(repro analyze --trace <id>)",
        ))
    else:
        print(
            "quality telemetry present but no completed audits — the "
            "sampling coin or the overhead budget skipped every candidate"
        )
    return 0


def cmd_lint(args) -> int:
    """Run the AST linter (repro.lint); prints the report it returns."""
    code, text = lint_cli.run_args(args)
    print(text)
    return code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASQP-RL reproduction CLI"
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="train + short query session")
    _add_common(demo)
    demo.set_defaults(func=cmd_demo)

    train = commands.add_parser("train", help="train and save a model")
    _add_common(train)
    train.add_argument("--out", required=True, help="output model directory")
    train.set_defaults(func=cmd_train)

    query = commands.add_parser("query", help="query a saved model")
    query.add_argument("--model", required=True, help="saved model directory")
    query.add_argument("--dataset", default="imdb")
    query.add_argument("--scale", type=float, default=0.3)
    query.add_argument("--sql", required=True, help="SQL text to answer")
    query.set_defaults(func=cmd_query)

    explain = commands.add_parser(
        "explain", help="print the operator tree of a SQL query"
    )
    explain.add_argument("sql", help="SQL text (a leading EXPLAIN [ANALYZE] is ok)")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the query and record actual rows / "
                              "q-error / per-operator time")
    explain.add_argument("--json", action="store_true",
                         help="emit the plan as JSON instead of text")
    explain.add_argument("--dataset", default="imdb")
    explain.add_argument("--scale", type=float, default=0.3)
    explain.add_argument("--telemetry", metavar="DIR", default=None,
                         help="record the plan into an observability run")
    explain.set_defaults(func=cmd_explain)

    report = commands.add_parser(
        "report", help="fuse a recorded run into one diagnostic artifact"
    )
    report.add_argument("--dir", default=DEFAULT_OBS_DIR,
                        help="run directory written by --telemetry")
    report.add_argument("--out", default=None,
                        help="output path (default: <dir>/report.md|.html)")
    report.add_argument("--html", action="store_true",
                        help="render a self-contained HTML artifact")
    report.add_argument("--bench-dir", default=None,
                        help="bench_results directory (default: repo layout)")
    report.add_argument("--smoke", action="store_true",
                        help="run a tiny end-to-end pipeline first and report it")
    report.set_defaults(func=cmd_report)

    bench = commands.add_parser("bench", help="show recorded benchmark tables")
    bench.set_defaults(func=cmd_bench)

    stats = commands.add_parser(
        "stats", help="pretty-print a recorded run's metrics + telemetry"
    )
    stats.add_argument("--dir", default=DEFAULT_OBS_DIR,
                       help="run directory written by --telemetry")
    stats.add_argument("--last", type=int, default=10,
                       help="how many trailing updates/queries to show")
    stats.set_defaults(func=cmd_stats)

    trace = commands.add_parser(
        "trace", help="pretty-print a recorded run's span tree"
    )
    trace.add_argument("--dir", default=DEFAULT_OBS_DIR,
                       help="run directory written by --telemetry")
    trace.add_argument("--depth", type=int, default=6,
                       help="maximum span nesting depth to print")
    trace.set_defaults(func=cmd_trace)

    analyze = commands.add_parser(
        "analyze",
        help="reconstruct retained traces: span trees + critical paths",
    )
    analyze.add_argument("--dir", default=DEFAULT_OBS_DIR,
                         help="run directory written by --telemetry")
    analyze.add_argument("--trace", default=None, metavar="ID",
                         help="trace id (or unique prefix) to reconstruct")
    analyze.add_argument("--slowest", type=int, default=5, metavar="N",
                         help="show the N slowest retained traces")
    analyze.set_defaults(func=cmd_analyze)

    diff = commands.add_parser(
        "diff", help="compare span latencies between two recorded runs"
    )
    diff.add_argument("run_a", help="baseline run directory")
    diff.add_argument("run_b", help="candidate run directory")
    diff.set_defaults(func=cmd_diff)

    profile = commands.add_parser(
        "profile",
        help="run another repro command under the sampling profiler",
        description="Wrap any other repro command in an observability run "
                    "with the continuous sampling profiler, the tracemalloc "
                    "memory tracker, and the default latency SLOs enabled. "
                    "Artifacts (flamegraph.html, profile.collapsed.txt, "
                    "slo.json, memory.json, ...) land in --dir.",
    )
    profile.add_argument("--dir", default=DEFAULT_OBS_DIR,
                         help="run directory for the recorded artifacts")
    profile.add_argument("--hz", type=float, default=100.0,
                         help="profiler sampling frequency (samples/s)")
    profile.add_argument("--no-memory", action="store_true",
                         help="skip the tracemalloc memory tracker "
                              "(it slows allocation-heavy code)")
    profile.add_argument("--slo", action="append", default=None,
                         metavar="SPEC",
                         help="objective like 'query.p95 < 250ms' "
                              "(repeatable; default: the built-in set)")
    profile.add_argument("cmd", nargs=argparse.REMAINDER,
                         help="the repro command to run, e.g. "
                              "`demo --light --scale 0.15`")
    profile.set_defaults(func=cmd_profile)

    top = commands.add_parser(
        "top", help="live terminal view of a profiled run directory"
    )
    top.add_argument("--dir", default=DEFAULT_OBS_DIR,
                     help="run directory being written by `repro profile`")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (CI-friendly)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: until Ctrl-C)")
    top.set_defaults(func=cmd_top)

    watch = commands.add_parser(
        "watch",
        help="live ops console: QPS/p95, worker utilization, SLO burn",
    )
    watch.add_argument("--dir", default=DEFAULT_OBS_DIR,
                       help="run directory a live run is writing into")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit (CI-friendly)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes")
    watch.add_argument("--iterations", type=int, default=None,
                       help="stop after N frames (default: until Ctrl-C)")
    watch.set_defaults(func=cmd_watch)

    audit = commands.add_parser(
        "audit",
        help="shadow-audit view: predicted vs audited answer quality",
        description="Print the answer-quality accounting of a recorded "
                    "run: shadow-audit counts, audited recall, and a "
                    "predicted-vs-observed calibration table (see "
                    "repro.obs.quality). Exits 1 when the run recorded "
                    "no audit data.",
    )
    audit.add_argument("--dir", default=DEFAULT_OBS_DIR,
                       help="run directory written by --telemetry")
    audit.add_argument("--sample-rate", default=None, metavar="RATE",
                       help="shadow-audit sample rate in [0, 1] for --smoke "
                            "(default: 1.0 with --smoke; recorded runs use "
                            "REPRO_AUDIT_RATE or 0.1)")
    audit.add_argument("--smoke", action="store_true",
                       help="record a micro end-to-end run with auditing "
                            "enabled first, then print its audit view")
    audit.add_argument("--last", type=int, default=5,
                       help="how many worst audited answers to show")
    audit.set_defaults(func=cmd_audit)

    lint = commands.add_parser(
        "lint", help="run the AST lint rule pack over source paths"
    )
    lint_cli.add_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
