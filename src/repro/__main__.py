"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``   — train on a bundled dataset and run a short query session.
``train``  — train ASQP-RL and save the model directory.
``query``  — load a saved model and answer one SQL query.
``bench``  — print the location and contents of recorded benchmark tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .core import ASQPConfig, ASQPSession, ASQPTrainer, load_model, save_model, score
from .datasets import load_flights, load_imdb, load_mas
from .db import sql

_LOADERS = {"imdb": load_imdb, "mas": load_mas, "flights": load_flights}


def _load_bundle(name: str, scale: float):
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise SystemExit(
            f"unknown dataset {name!r}; choose from {sorted(_LOADERS)}"
        )
    return loader(scale=scale)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="imdb", help="imdb | mas | flights")
    parser.add_argument("--scale", type=float, default=0.3, help="dataset size scale")
    parser.add_argument("--k", type=int, default=600, help="memory budget (tuples)")
    parser.add_argument("--frame-size", type=int, default=50, help="frame size F")
    parser.add_argument("--iterations", type=int, default=25, help="PPO iterations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--light", action="store_true", help="use ASQP-Light settings")


def _make_config(args) -> ASQPConfig:
    overrides = dict(
        memory_budget=args.k,
        frame_size=args.frame_size,
        n_iterations=args.iterations,
        learning_rate=1e-3,
        seed=args.seed,
    )
    return ASQPConfig.light(**overrides) if args.light else ASQPConfig(**overrides)


def cmd_demo(args) -> int:
    bundle = _load_bundle(args.dataset, args.scale)
    print(f"dataset: {bundle.db}")
    config = _make_config(args)
    print(f"training {'ASQP-Light' if args.light else 'ASQP-RL'} "
          f"(k={config.memory_budget}, F={config.frame_size})...")
    start = time.perf_counter()
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    print(f"trained in {time.perf_counter() - start:.1f}s")
    session = ASQPSession(model, auto_fine_tune=False)
    train_quality = score(bundle.db, session.approx_db, bundle.workload,
                          config.frame_size)
    print(f"workload quality (Eq. 1): {train_quality:.3f}")
    for query in list(bundle.workload)[:3]:
        outcome = session.query(query)
        source = "approx" if outcome.used_approximation else "full DB"
        print(f"  {query.to_sql()[:70]}...")
        print(f"    -> {len(outcome)} rows via {source} "
              f"({outcome.elapsed_seconds * 1000:.1f}ms)")
    return 0


def cmd_train(args) -> int:
    bundle = _load_bundle(args.dataset, args.scale)
    config = _make_config(args)
    print(f"training on {bundle.db} ...")
    model = ASQPTrainer(bundle.db, bundle.workload, config).train()
    save_model(model, args.out)
    print(f"model saved to {args.out} "
          f"(setup {model.setup_seconds:.1f}s, "
          f"{len(model.action_space)} actions)")
    return 0


def cmd_query(args) -> int:
    bundle = _load_bundle(args.dataset, args.scale)
    model = load_model(args.model, bundle.db)
    session = ASQPSession(model, auto_fine_tune=False)
    query = sql(args.sql)
    outcome = session.query(query)
    source = "approximation set" if outcome.used_approximation else "full database"
    print(f"{len(outcome)} rows from the {source} "
          f"(confidence {outcome.estimate.confidence:.2f}, "
          f"{outcome.elapsed_seconds * 1000:.1f}ms)")
    if hasattr(outcome.result, "rows"):
        for row in outcome.result.rows[:10]:
            print(f"  {row}")
    else:
        for row in outcome.result.to_rows()[:10]:
            print(f"  {row}")
    return 0


def cmd_bench(args) -> int:
    import glob
    import os

    from .bench.reporting import results_dir

    directory = results_dir()
    tables = sorted(glob.glob(os.path.join(directory, "*.txt")))
    if not tables:
        print(f"no recorded tables under {directory}/ — run:")
        print("  pytest benchmarks/ --benchmark-only -s")
        return 1
    for path in tables:
        with open(path) as handle:
            print(handle.read())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASQP-RL reproduction CLI"
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="train + short query session")
    _add_common(demo)
    demo.set_defaults(func=cmd_demo)

    train = commands.add_parser("train", help="train and save a model")
    _add_common(train)
    train.add_argument("--out", required=True, help="output model directory")
    train.set_defaults(func=cmd_train)

    query = commands.add_parser("query", help="query a saved model")
    query.add_argument("--model", required=True, help="saved model directory")
    query.add_argument("--dataset", default="imdb")
    query.add_argument("--scale", type=float, default=0.3)
    query.add_argument("--sql", required=True, help="SQL text to answer")
    query.set_defaults(func=cmd_query)

    bench = commands.add_parser("bench", help="show recorded benchmark tables")
    bench.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
