"""Project index: cached per-file summaries + findings for incremental lint.

``repro lint`` is a two-phase analyzer (DESIGN.md §12): phase 1 parses
every file once, runs the per-file rules, and builds the module effect
summary (:mod:`repro.lint.effects`); phase 2 runs the whole-program
rules over the assembled :class:`~repro.lint.callgraph.CallGraph`.
Phase 1 dominates the cost, and its outputs depend only on the file's
bytes and the active rule pack — so they are cached here.

The cache file (``.lint_cache.json`` by default, git-ignored) maps each
display path to ``{sha, rules_key, findings, summary, suppressions,
line_hashes}``. A file whose content hash and rules key match is never
re-parsed: its per-file findings, suppression map, per-line content
hashes (baseline fingerprints), and effect summary all come from the
cache, and only the cheap phase-2 pass runs fresh. Any mismatch —
edited file, different rule subset, bumped ``CACHE_SCHEMA`` — recomputes
that file alone. Writes are atomic (temp file + rename) so concurrent
lint runs can only ever see a complete cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional

#: Bump to invalidate every cached entry (summary/finding shape change).
CACHE_SCHEMA = 1

#: Default cache filename, resolved against the working directory.
DEFAULT_CACHE = ".lint_cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def line_hash(line: str) -> str:
    """Content fingerprint of one source line (location-independent)."""
    return hashlib.sha1(line.strip().encode("utf-8")).hexdigest()[:12]


def line_hashes(source: str) -> list[str]:
    return [line_hash(line) for line in source.splitlines()]


_ANALYZER_FINGERPRINT: Optional[str] = None


def analyzer_fingerprint() -> str:
    """Content hash of the lint package's own sources.

    Folded into every cache key so upgrading the analyzer (new rule
    logic, changed summary shape) invalidates stale entries without
    anyone remembering to bump :data:`CACHE_SCHEMA` by hand.
    """
    global _ANALYZER_FINGERPRINT
    if _ANALYZER_FINGERPRINT is None:
        root = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha1()
        for name in sorted(os.listdir(root)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            try:
                with open(os.path.join(root, name), "rb") as handle:
                    digest.update(handle.read())
            except OSError:
                continue
        _ANALYZER_FINGERPRINT = digest.hexdigest()[:12]
    return _ANALYZER_FINGERPRINT


def rules_key(rule_names: list[str]) -> str:
    """Cache key component: active per-file rule pack + analyzer version."""
    joined = ",".join(sorted(rule_names)) + "@" + analyzer_fingerprint()
    return hashlib.sha1(joined.encode("utf-8")).hexdigest()[:12]


class LintCache:
    """Content-hash-keyed store of per-file phase-1 results."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.files: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                payload = None  # unreadable cache: start fresh
            if (
                isinstance(payload, dict)
                and payload.get("schema") == CACHE_SCHEMA
                and isinstance(payload.get("files"), dict)
            ):
                self.files = payload["files"]

    def lookup(
        self, display: str, sha: str, key: str
    ) -> Optional[dict[str, Any]]:
        # Entries key on (path, rule pack) so runs with different rule
        # subsets (check_no_print.sh vs the full pack) never thrash each
        # other's cache.
        entry = self.files.get(f"{display}|{key}")
        if (
            entry is not None
            and entry.get("sha") == sha
            and entry.get("rules_key") == key
        ):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, display: str, key: str, entry: dict[str, Any]) -> None:
        self.files[f"{display}|{key}"] = entry
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"schema": CACHE_SCHEMA, "files": self.files}
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd, temp_path = tempfile.mkstemp(
                prefix=".lint_cache.", suffix=".tmp", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temp_path, self.path)
        except OSError:
            return  # read-only checkout: caching is best-effort only
