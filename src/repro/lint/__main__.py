"""Standalone entry point: ``python -m repro.lint [PATHS...]``.

Equivalent to ``python -m repro lint`` but importable without the rest
of the CLI — scripts (``scripts/check_no_print.sh``) use this form.
"""

from __future__ import annotations

import argparse
import sys

from . import cli


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint", description="ASQP-RL repo linter"
    )
    cli.add_arguments(parser)
    code, text = cli.run_args(parser.parse_args(argv))
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
