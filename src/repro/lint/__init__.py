"""AST-based project linter (``repro lint``).

Machine-checks the repo invariants that the reproduction's correctness
rests on — seeded randomness, the closed dependency surface, structured
output/timing, surfaced failures, and (whole-program) fork-safety,
resource lifecycles, and the telemetry-sink chokepoint — instead of
trusting convention. See DESIGN.md §12 for the two-phase architecture
and each rule's rationale, and :mod:`repro.lint.rules` for the
implementations.

Public API::

    from repro.lint import run_lint, Finding, RULES

    report = run_lint(["src"])          # full rule pack, no baseline
    report.findings                     # list[Finding], file/line/rule/message
    report.errors, report.warnings      # severity breakdown
    report.exit_code                    # 0 clean, 1 new findings

Suppress a single line with ``# lint: disable=<rule>[,<rule>]`` (or
``# lint: disable`` for all rules); grandfather whole findings with a
``lint_baseline.json`` written by ``repro lint --write-baseline``
(fingerprinted by content hash of the flagged line, so unrelated edits
never churn it). ``repro lint --explain RULE`` prints a rule's full
documentation.
"""

from .callgraph import CallGraph
from .effects import summarize_module
from .engine import (
    DEFAULT_BASELINE,
    Baseline,
    Finding,
    LintReport,
    lint_file,
    load_baseline,
    profile_for,
    run_lint,
    write_baseline,
)
from .formats import to_html, to_sarif
from .index import DEFAULT_CACHE, LintCache
from .rules import RULES, ProjectRule, Rule, UnknownRuleError

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE",
    "Finding",
    "LintCache",
    "LintReport",
    "ProjectRule",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "lint_file",
    "load_baseline",
    "profile_for",
    "run_lint",
    "summarize_module",
    "to_html",
    "to_sarif",
    "write_baseline",
]
