"""AST-based project linter (``repro lint``).

Machine-checks the repo invariants that the reproduction's correctness
rests on — seeded randomness, the closed dependency surface, structured
output/timing, surfaced failures — instead of trusting convention. See
DESIGN.md §"Static analysis & strict mode" for each rule's rationale and
:mod:`repro.lint.rules` for the implementations.

Public API::

    from repro.lint import run_lint, Finding, RULES

    report = run_lint(["src"])          # full rule pack, no baseline
    report.findings                     # list[Finding], file/line/rule/message
    report.exit_code                    # 0 clean, 1 new findings

Suppress a single line with ``# lint: disable=<rule>[,<rule>]`` (or
``# lint: disable`` for all rules); grandfather whole findings with a
``lint_baseline.json`` written by ``repro lint --write-baseline``.
"""

from .engine import (
    DEFAULT_BASELINE,
    Finding,
    LintReport,
    lint_file,
    load_baseline,
    run_lint,
    write_baseline,
)
from .rules import RULES, Rule, UnknownRuleError

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "lint_file",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
