"""Argument wiring and rendering for ``repro lint``.

The functions here *return* text instead of printing it: the package's
own ``no-bare-print`` rule applies to this package too, so the only
print sites are the designated console surfaces (``repro/__main__.py``
and ``repro/lint/__main__.py``), which print what :func:`run` returns.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Optional, Sequence

from . import engine
from .engine import DEFAULT_BASELINE
from .rules import RULES, UnknownRuleError


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of file:line text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RULES",
        help="comma-separated subset of rules to run "
             f"(available: {', '.join(sorted(RULES))})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules with their rationale and exit",
    )


def _list_rules_text() -> str:
    width = max(len(name) for name in RULES)
    return "\n".join(
        f"{name.ljust(width)}  {rule.rationale}"
        for name, rule in sorted(RULES.items())
    )


def run(
    paths: Sequence[str],
    rules: Optional[str] = None,
    baseline: Optional[str] = None,
    as_json: bool = False,
    write_baseline: bool = False,
    list_rules: bool = False,
) -> tuple[int, str]:
    """Run the linter; returns ``(exit_code, text_to_print)``.

    Exit codes: 0 clean, 1 new findings, 2 usage error (unknown rule,
    unreadable baseline).
    """
    if list_rules:
        return 0, _list_rules_text()

    rule_names = None
    if rules is not None:
        rule_names = [name.strip() for name in rules.split(",") if name.strip()]

    if baseline is None and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE

    baseline_for_run = None if write_baseline else baseline
    try:
        report = engine.run_lint(paths, rule_names, baseline_for_run)
    except (UnknownRuleError, engine.BaselineError) as exc:
        return 2, f"lint: error: {exc}"

    if write_baseline:
        target = baseline or DEFAULT_BASELINE
        engine.write_baseline(target, report.findings)
        return 0, (
            f"lint: wrote {len(report.findings)} finding(s) to {target}"
        )

    text = (
        json.dumps(report.to_json(), indent=2)
        if as_json
        else report.format_human()
    )
    return report.exit_code, text


def run_args(args: argparse.Namespace) -> tuple[int, str]:
    """Adapter from parsed argparse namespace to :func:`run`."""
    return run(
        paths=args.paths,
        rules=args.rules,
        baseline=args.baseline,
        as_json=args.as_json,
        write_baseline=args.write_baseline,
        list_rules=args.list_rules,
    )
