"""Argument wiring and rendering for ``repro lint``.

The functions here *return* text instead of printing it: the package's
own ``no-bare-print`` rule applies to this package too, so the only
print sites are the designated console surfaces (``repro/__main__.py``
and ``repro/lint/__main__.py``), which print what :func:`run` returns.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
from typing import Optional, Sequence

from . import engine, formats
from .engine import DEFAULT_BASELINE
from .index import DEFAULT_CACHE
from .rules import RULES, ProjectRule, UnknownRuleError

#: Default path set: the library plus the relaxed-profile trees.
DEFAULT_PATHS = ("src", "tests", "benchmarks")

FORMATS = ("text", "json", "sarif", "html")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: "
             f"{' '.join(DEFAULT_PATHS)}, skipping ones that don't exist)",
    )
    parser.add_argument(
        "--format", default="text", choices=FORMATS, dest="output_format",
        help="output format (default: text; sarif for CI annotations, "
             "html for a self-contained report)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RULES",
        help="comma-separated subset of rules to run "
             f"(available: {', '.join(sorted(RULES))})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules with their rationale and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print one rule's full documentation (invariant, rationale, "
             "severity) and exit",
    )
    parser.add_argument(
        "--strict-severity", action="store_true",
        help="exit nonzero only on error-severity findings "
             "(warnings are reported but don't fail)",
    )
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE, metavar="FILE",
        help="phase-1 result cache keyed on content hashes "
             f"(default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the phase-1 cache for this run",
    )


def _list_rules_text() -> str:
    width = max(len(name) for name in RULES)
    return "\n".join(
        f"{name.ljust(width)}  {rule.rationale}"
        for name, rule in sorted(RULES.items())
    )


def _explain_text(name: str) -> tuple[int, str]:
    rule = RULES.get(name)
    if rule is None:
        return 2, (
            f"lint: error: unknown rule {name!r}; "
            f"available: {', '.join(sorted(RULES))}"
        )
    scope = "whole-program" if isinstance(rule, ProjectRule) else "per-file"
    lines = [
        f"{rule.name} ({rule.severity}, {scope})",
        f"  rationale: {rule.rationale}",
    ]
    if rule.skip_profiles:
        lines.append(
            "  skipped in: " + ", ".join(sorted(rule.skip_profiles))
        )
    doc = inspect.getdoc(rule)
    if doc:
        lines.append("")
        lines.extend(f"  {line}" if line else "" for line in doc.splitlines())
    return 0, "\n".join(lines)


def _render(report: engine.LintReport, output_format: str) -> str:
    if output_format == "json":
        return json.dumps(report.to_json(), indent=2)
    if output_format == "sarif":
        return json.dumps(formats.to_sarif(report), indent=2)
    if output_format == "html":
        return formats.to_html(report)
    return report.format_human()


def run(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[str] = None,
    baseline: Optional[str] = None,
    as_json: bool = False,
    write_baseline: bool = False,
    list_rules: bool = False,
    output_format: str = "text",
    explain: Optional[str] = None,
    strict_severity: bool = False,
    cache: Optional[str] = DEFAULT_CACHE,
    no_cache: bool = False,
) -> tuple[int, str]:
    """Run the linter; returns ``(exit_code, text_to_print)``.

    Exit codes: 0 clean, 1 new findings (errors only under
    ``strict_severity``), 2 usage error (unknown rule, unreadable
    baseline).
    """
    if list_rules:
        return 0, _list_rules_text()
    if explain is not None:
        return _explain_text(explain)

    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(p)]
    if as_json and output_format == "text":
        output_format = "json"

    rule_names = None
    if rules is not None:
        rule_names = [name.strip() for name in rules.split(",") if name.strip()]

    if baseline is None and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE

    cache_path = None if no_cache else cache
    baseline_for_run = None if write_baseline else baseline
    try:
        report = engine.run_lint(
            paths, rule_names, baseline_for_run, cache_path
        )
    except (UnknownRuleError, engine.BaselineError) as exc:
        return 2, f"lint: error: {exc}"

    if write_baseline:
        target = baseline or DEFAULT_BASELINE
        engine.write_baseline(target, report.findings)
        return 0, (
            f"lint: wrote {len(report.findings)} finding(s) to {target}"
        )

    return (
        report.exit_code_for(strict_severity),
        _render(report, output_format),
    )


def run_args(args: argparse.Namespace) -> tuple[int, str]:
    """Adapter from parsed argparse namespace to :func:`run`."""
    return run(
        paths=args.paths,
        rules=args.rules,
        baseline=args.baseline,
        as_json=args.as_json,
        write_baseline=args.write_baseline,
        list_rules=args.list_rules,
        output_format=args.output_format,
        explain=args.explain,
        strict_severity=args.strict_severity,
        cache=args.cache,
        no_cache=args.no_cache,
    )
