"""The rule pack: each rule machine-checks one repo invariant.

Rules are :class:`ast.NodeVisitor`-style checkers registered in
:data:`RULES`. Each one documents *which reproduction invariant it
protects* (mirrored in DESIGN.md §"Static analysis & strict mode") —
these are not style rules; every one guards something that corrupts
benchmarks, training runs, or the dependency contract when violated.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator, Optional, Sequence

from .engine import FileContext, Finding


class UnknownRuleError(ValueError):
    """Raised for a rule name that is not registered."""


def _path_parts(path: str) -> list[str]:
    return path.replace("\\", "/").split("/")


def _dotted_name(node: ast.AST, imports: "ImportMap") -> Optional[str]:
    """Resolve an attribute chain to its imported dotted origin.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; a bare name bound by ``from time import
    perf_counter`` resolves to ``time.perf_counter``. Names that were not
    bound by an import resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.names.get(node.id)
    if origin is None:
        return None
    return ".".join([origin, *reversed(parts)])


class ImportMap(ast.NodeVisitor):
    """Local name → dotted import origin, for resolving call targets."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.names[alias.asname] = alias.name
            else:
                top = alias.name.split(".")[0]
                self.names[top] = top

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return  # relative import: in-package, never an external origin
        for alias in node.names:
            self.names[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )


def _build_import_map(tree: ast.AST) -> ImportMap:
    imports = ImportMap()
    imports.visit(tree)
    return imports


class Rule:
    """Base class: subclasses set ``name``/``rationale`` and ``check``."""

    name: str = ""
    severity: str = "error"
    rationale: str = ""

    def exempt(self, path: str) -> bool:
        return False

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ------------------------------------------------------------------ #
class NoGlobalNumpyRandom(Rule):
    """Invariant: every random draw flows through a passed Generator.

    Training is seeded end to end (``ASQPConfig.seed`` → spawned
    ``SeedSequence`` per actor/environment); a single call into numpy's
    *global* legacy RNG makes runs irreproducible and silently couples
    unrelated components through shared hidden state.
    """

    name = "no-global-numpy-random"
    rationale = (
        "global np.random.* breaks seeded reproducibility; pass an "
        "np.random.Generator explicitly"
    )

    #: Constructors of explicit, instance-scoped randomness — allowed.
    ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "RandomState", "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
    })

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        imports = _build_import_map(tree)
        findings = []
        for call in _walk_calls(tree):
            dotted = _dotted_name(call.func, imports)
            if not dotted or not dotted.startswith("numpy.random."):
                continue
            leaf = dotted.split(".")[-1]
            if len(dotted.split(".")) == 3 and leaf not in self.ALLOWED:
                findings.append(self.finding(
                    context, call,
                    f"call to global numpy RNG '{dotted}'; use an explicitly "
                    "passed np.random.Generator (np.random.default_rng)",
                ))
        return findings


class ForbiddenImport(Rule):
    """Invariant: the dependency surface stays stdlib + numpy/scipy/networkx.

    DESIGN.md §2 replaces PyTorch/Ray/PostgreSQL/sentence-BERT with
    from-scratch numpy implementations; an import of torch/pandas/ray is
    dependency creep that breaks the offline, CPU-only environment.
    """

    name = "forbidden-import"
    rationale = (
        "dependency surface is stdlib + numpy/scipy/networkx only "
        "(DESIGN.md §2 substitutions)"
    )

    ALLOWED_TOP = frozenset(sys.stdlib_module_names) | {
        "numpy", "scipy", "networkx", "repro",
    }

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                modules = [node.module]
            for module in modules:
                top = module.split(".")[0]
                if top not in self.ALLOWED_TOP:
                    findings.append(self.finding(
                        context, node,
                        f"import of '{module}' outside the allowed dependency "
                        "surface (stdlib + numpy/scipy/networkx; DESIGN.md §2)",
                    ))
        return findings


class NoBarePrint(Rule):
    """Invariant: library output goes through obs.log / telemetry.

    Bare ``print()`` bypasses the structured channels, corrupts captured
    benchmark tables, and cannot be silenced in headless runs. The CLI
    entry point and the console implementation are the two designated
    print surfaces.
    """

    name = "no-bare-print"
    rationale = (
        "library code must use repro.obs.log.console or telemetry, "
        "not print()"
    )

    EXEMPT_SUFFIXES = ("__main__.py", "obs/log.py")

    def exempt(self, path: str) -> bool:
        return path.replace("\\", "/").endswith(self.EXEMPT_SUFFIXES)

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        return [
            self.finding(
                context, call,
                "bare print() in library code; use repro.obs.log.console "
                "or a telemetry stream",
            )
            for call in _walk_calls(tree)
            if isinstance(call.func, ast.Name) and call.func.id == "print"
        ]


class NoSilentExcept(Rule):
    """Invariant: failures surface; they are never silently swallowed.

    A swallowed exception in preprocessing or training yields a model
    trained on partial state — the run completes and reports numbers that
    are quietly wrong, the worst failure mode for a reproduction.
    """

    name = "no-silent-except"
    rationale = (
        "bare/broad except that swallows errors produces silently-wrong "
        "benchmark numbers"
    )

    BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _handler_names(type_node: Optional[ast.AST]) -> list[str]:
        if type_node is None:
            return []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        names = []
        for node in nodes:
            while isinstance(node, ast.Attribute):
                node = node.value  # builtins.Exception etc.
            if isinstance(node, ast.Name):
                names.append(node.id)
        return names

    @staticmethod
    def _is_trivial(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    context, node,
                    "bare 'except:' (also catches SystemExit/KeyboardInterrupt); "
                    "catch a specific exception",
                ))
            elif (
                any(n in self.BROAD for n in self._handler_names(node.type))
                and self._is_trivial(node.body)
            ):
                findings.append(self.finding(
                    context, node,
                    "broad except handler silently swallows the error; "
                    "narrow it or handle the failure",
                ))
        return findings


class NoWallclockInLibrary(Rule):
    """Invariant: library timing flows through obs (spans / obs.clock).

    Scattered ``time.time()``/``time.perf_counter()`` reads cannot be
    attributed in traces or faked in tests; the single chokepoint is
    ``repro.obs.clock`` (or a tracing span, which times and attributes
    in one construct). ``obs/`` and the bench harnesses own raw clocks.
    """

    name = "no-wallclock-in-library"
    rationale = (
        "raw wall-clock reads outside obs//bench bypass the tracing/"
        "timing chokepoint (repro.obs.clock)"
    )

    WALLCLOCK = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    })

    EXEMPT_PARTS = frozenset({"obs", "bench", "benchmarks"})

    def exempt(self, path: str) -> bool:
        return bool(self.EXEMPT_PARTS.intersection(_path_parts(path)[:-1]))

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        imports = _build_import_map(tree)
        findings = []
        for call in _walk_calls(tree):
            dotted = _dotted_name(call.func, imports)
            if dotted in self.WALLCLOCK:
                findings.append(self.finding(
                    context, call,
                    f"raw wall-clock call '{dotted}' in library code; use "
                    "repro.obs.clock or a tracing span",
                ))
        return findings


class NoMutableDefaultArg(Rule):
    """Invariant: no state shared across calls through default arguments.

    A mutable default is one object shared by every call — accumulated
    coverage lists or cache dicts leak between training runs and make
    results depend on call history instead of seeds.
    """

    name = "no-mutable-default-arg"
    rationale = (
        "mutable defaults share state across calls, making results "
        "depend on call history"
    )

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self.MUTABLE_CALLS
        )

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(self.finding(
                        context, default,
                        "mutable default argument is shared across calls; "
                        "default to None and create inside the function",
                    ))
        return findings


# ------------------------------------------------------------------ #
_ALL_RULES = (
    NoGlobalNumpyRandom(),
    ForbiddenImport(),
    NoBarePrint(),
    NoSilentExcept(),
    NoWallclockInLibrary(),
    NoMutableDefaultArg(),
)

RULES: dict[str, Rule] = {rule.name: rule for rule in _ALL_RULES}


def get_rules(names: Optional[Sequence[str]] = None) -> list[Rule]:
    """Resolve rule names (default: the full pack, registry order)."""
    if names is None:
        return list(_ALL_RULES)
    rules = []
    for name in names:
        rule = RULES.get(name)
        if rule is None:
            raise UnknownRuleError(
                f"unknown lint rule {name!r}; available: {sorted(RULES)}"
            )
        rules.append(rule)
    return rules
