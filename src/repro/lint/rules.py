"""The rule pack: each rule machine-checks one repo invariant.

Rules are :class:`ast.NodeVisitor`-style checkers registered in
:data:`RULES`. Each one documents *which reproduction invariant it
protects* (mirrored in DESIGN.md §"Static analysis & strict mode") —
these are not style rules; every one guards something that corrupts
benchmarks, training runs, or the dependency contract when violated.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator, Optional, Sequence

from .engine import FileContext, Finding


class UnknownRuleError(ValueError):
    """Raised for a rule name that is not registered."""


def _path_parts(path: str) -> list[str]:
    return path.replace("\\", "/").split("/")


def _dotted_name(node: ast.AST, imports: "ImportMap") -> Optional[str]:
    """Resolve an attribute chain to its imported dotted origin.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; a bare name bound by ``from time import
    perf_counter`` resolves to ``time.perf_counter``. Names that were not
    bound by an import resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.names.get(node.id)
    if origin is None:
        return None
    return ".".join([origin, *reversed(parts)])


class ImportMap(ast.NodeVisitor):
    """Local name → dotted import origin, for resolving call targets."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.names[alias.asname] = alias.name
            else:
                top = alias.name.split(".")[0]
                self.names[top] = top

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return  # relative import: in-package, never an external origin
        for alias in node.names:
            self.names[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )


def _build_import_map(tree: ast.AST) -> ImportMap:
    imports = ImportMap()
    imports.visit(tree)
    return imports


class Rule:
    """Base class: subclasses set ``name``/``rationale`` and ``check``."""

    name: str = ""
    severity: str = "error"
    rationale: str = ""

    #: Tree profiles ("tests", "benchmarks") where the rule is not run at
    #: all — the relaxed rule subset for non-library trees.
    skip_profiles: frozenset = frozenset()

    def exempt(self, path: str) -> bool:
        return False

    def skip(self, path: str, profile: str) -> bool:
        """Whole-file/tree gate combining path exemptions and profiles."""
        return profile in self.skip_profiles or self.exempt(path)

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A whole-program rule: runs once over the project call graph.

    Project rules never see a single file's AST — they consume the
    :class:`~repro.lint.callgraph.CallGraph` assembled from every module
    summary (phase 2). Path exemptions, tree profiles, and inline
    suppressions still apply per finding, handled by the engine.
    """

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        return []

    def check_project(self, graph) -> list[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=path,
            line=line,
            col=1,
            message=message,
            severity=severity or self.severity,
        )


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ------------------------------------------------------------------ #
class NoGlobalNumpyRandom(Rule):
    """Invariant: every random draw flows through a passed Generator.

    Training is seeded end to end (``ASQPConfig.seed`` → spawned
    ``SeedSequence`` per actor/environment); a single call into numpy's
    *global* legacy RNG makes runs irreproducible and silently couples
    unrelated components through shared hidden state.
    """

    name = "no-global-numpy-random"
    rationale = (
        "global np.random.* breaks seeded reproducibility; pass an "
        "np.random.Generator explicitly"
    )

    #: Constructors of explicit, instance-scoped randomness — allowed.
    ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "RandomState", "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
    })

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        imports = _build_import_map(tree)
        findings = []
        for call in _walk_calls(tree):
            dotted = _dotted_name(call.func, imports)
            if not dotted or not dotted.startswith("numpy.random."):
                continue
            leaf = dotted.split(".")[-1]
            if len(dotted.split(".")) == 3 and leaf not in self.ALLOWED:
                findings.append(self.finding(
                    context, call,
                    f"call to global numpy RNG '{dotted}'; use an explicitly "
                    "passed np.random.Generator (np.random.default_rng)",
                ))
        return findings


class ForbiddenImport(Rule):
    """Invariant: the dependency surface stays stdlib + numpy/scipy/networkx.

    DESIGN.md §2 replaces PyTorch/Ray/PostgreSQL/sentence-BERT with
    from-scratch numpy implementations; an import of torch/pandas/ray is
    dependency creep that breaks the offline, CPU-only environment.
    """

    name = "forbidden-import"
    rationale = (
        "dependency surface is stdlib + numpy/scipy/networkx only "
        "(DESIGN.md §2 substitutions)"
    )

    ALLOWED_TOP = frozenset(sys.stdlib_module_names) | {
        "numpy", "scipy", "networkx", "repro",
    }

    #: Non-library trees may additionally use the test toolchain and
    #: import their own sibling modules.
    PROFILE_EXTRA = {
        "tests": frozenset({
            "pytest", "hypothesis", "tests", "benchmarks", "conftest",
        }),
        "benchmarks": frozenset({"pytest", "tests", "benchmarks"}),
    }

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        allowed = self.ALLOWED_TOP | self.PROFILE_EXTRA.get(
            context.profile, frozenset()
        )
        findings = []
        for node in ast.walk(tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                modules = [node.module]
            for module in modules:
                top = module.split(".")[0]
                if top not in allowed:
                    findings.append(self.finding(
                        context, node,
                        f"import of '{module}' outside the allowed dependency "
                        "surface (stdlib + numpy/scipy/networkx; DESIGN.md §2)",
                    ))
        return findings


class NoBarePrint(Rule):
    """Invariant: library output goes through obs.log / telemetry.

    Bare ``print()`` bypasses the structured channels, corrupts captured
    benchmark tables, and cannot be silenced in headless runs. The CLI
    entry point and the console implementation are the two designated
    print surfaces.
    """

    name = "no-bare-print"
    rationale = (
        "library code must use repro.obs.log.console or telemetry, "
        "not print()"
    )

    #: Benchmarks print their result tables to stdout by design.
    skip_profiles = frozenset({"benchmarks"})

    EXEMPT_SUFFIXES = ("__main__.py", "obs/log.py")

    def exempt(self, path: str) -> bool:
        return path.replace("\\", "/").endswith(self.EXEMPT_SUFFIXES)

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        return [
            self.finding(
                context, call,
                "bare print() in library code; use repro.obs.log.console "
                "or a telemetry stream",
            )
            for call in _walk_calls(tree)
            if isinstance(call.func, ast.Name) and call.func.id == "print"
        ]


class NoSilentExcept(Rule):
    """Invariant: failures surface; they are never silently swallowed.

    A swallowed exception in preprocessing or training yields a model
    trained on partial state — the run completes and reports numbers that
    are quietly wrong, the worst failure mode for a reproduction.
    """

    name = "no-silent-except"
    rationale = (
        "bare/broad except that swallows errors produces silently-wrong "
        "benchmark numbers"
    )

    BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _handler_names(type_node: Optional[ast.AST]) -> list[str]:
        if type_node is None:
            return []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        names = []
        for node in nodes:
            while isinstance(node, ast.Attribute):
                node = node.value  # builtins.Exception etc.
            if isinstance(node, ast.Name):
                names.append(node.id)
        return names

    @staticmethod
    def _is_trivial(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    context, node,
                    "bare 'except:' (also catches SystemExit/KeyboardInterrupt); "
                    "catch a specific exception",
                ))
            elif (
                any(n in self.BROAD for n in self._handler_names(node.type))
                and self._is_trivial(node.body)
            ):
                findings.append(self.finding(
                    context, node,
                    "broad except handler silently swallows the error; "
                    "narrow it or handle the failure",
                ))
        return findings


class NoWallclockInLibrary(Rule):
    """Invariant: library timing flows through obs (spans / obs.clock).

    Scattered ``time.time()``/``time.perf_counter()`` reads cannot be
    attributed in traces or faked in tests; the single chokepoint is
    ``repro.obs.clock`` (or a tracing span, which times and attributes
    in one construct). ``obs/`` and the bench harnesses own raw clocks.
    """

    name = "no-wallclock-in-library"
    rationale = (
        "raw wall-clock reads outside obs//bench bypass the tracing/"
        "timing chokepoint (repro.obs.clock)"
    )

    WALLCLOCK = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    })

    EXEMPT_PARTS = frozenset({"obs", "bench", "benchmarks"})

    def exempt(self, path: str) -> bool:
        return bool(self.EXEMPT_PARTS.intersection(_path_parts(path)[:-1]))

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        imports = _build_import_map(tree)
        findings = []
        for call in _walk_calls(tree):
            dotted = _dotted_name(call.func, imports)
            if dotted in self.WALLCLOCK:
                findings.append(self.finding(
                    context, call,
                    f"raw wall-clock call '{dotted}' in library code; use "
                    "repro.obs.clock or a tracing span",
                ))
        return findings


class NoMutableDefaultArg(Rule):
    """Invariant: no state shared across calls through default arguments.

    A mutable default is one object shared by every call — accumulated
    coverage lists or cache dicts leak between training runs and make
    results depend on call history instead of seeds.
    """

    name = "no-mutable-default-arg"
    rationale = (
        "mutable defaults share state across calls, making results "
        "depend on call history"
    )

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self.MUTABLE_CALLS
        )

    def check(self, context: FileContext, tree: ast.AST) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(self.finding(
                        context, default,
                        "mutable default argument is shared across calls; "
                        "default to None and create inside the function",
                    ))
        return findings


# ------------------------------------------------------------------ #
# whole-program rules (phase 2, over the project call graph)
# ------------------------------------------------------------------ #
class ForkUnsafeWorkerReachable(ProjectRule):
    """Invariant: code reachable from fork-pool workers touches no parent
    state.

    ``db/parallel.py`` forks workers that share the parent's memory
    image; a transitive callee that writes a module global, mutates
    imported-module state, acquires a parent-created lock, spawns a
    thread, opens an fd, or draws from the global numpy RNG corrupts the
    parent silently (fork) or diverges from it (spawn). The walk is
    seeded from every function handed to a pool fan-out call
    (``map_async``/``apply_async``/…, ``Pool(initializer=...)``,
    ``Process(target=...)``), including ones passed through dispatcher
    parameters, and follows resolved call edges across modules.
    """

    name = "fork-unsafe-worker-reachable"
    rationale = (
        "functions reachable from fork-pool workers must not mutate "
        "parent-process state (globals, locks, threads, fds, global RNG)"
    )

    #: Tests/benchmarks monkeypatch globals and fake pools on purpose.
    skip_profiles = frozenset({"tests", "benchmarks"})

    HAZARD_TEXT = {
        "global_write": "writes module global '{0}'",
        "attr_write": "mutates imported/module-level state '{0}'",
        "lock_acquire": "acquires a lock ({0})",
        "thread_create": "starts a thread ({0})",
        "fd_open": "opens an OS handle via {0}",
        "global_rng": "calls the global numpy RNG '{0}'",
    }

    def check_project(self, graph) -> list[Finding]:
        findings = []
        for gid in graph.worker_reachable():
            record = graph.get(gid)
            path = graph.path_of(gid)
            if record is None or not path:
                continue
            for category, sites in record["hazards"].items():
                template = self.HAZARD_TEXT[category]
                for description, lineno in sites:
                    findings.append(self.project_finding(
                        path, int(lineno),
                        f"'{graph.display_name(gid)}' runs inside fork-pool "
                        f"workers (reached via {graph.chain_text(gid)}) and "
                        f"{template.format(description)}; worker-reachable "
                        "code must not touch parent-process state",
                    ))
        return findings


class ShmLifecycle(ProjectRule):
    """Invariant: every shared-memory/pool resource is released on all
    paths.

    A ``SharedMemory`` block that is created but not unlinked leaks a
    ``/dev/shm`` segment past process exit; a worker pool that is never
    terminated leaks processes. A creation must be released on every
    exit — including exception paths — unless ownership escapes (the
    resource is returned, stored on an object, or handed to another
    call). Classes whose ``__init__`` creates a raw resource (e.g.
    ``_ShmArrays``) are tracked at their construction sites too.
    """

    name = "shm-lifecycle"
    rationale = (
        "shared-memory/pool creations must be released on every exit "
        "path (finally/with), or ownership must escape"
    )

    #: Test fixtures create deliberately-leaky resources.
    skip_profiles = frozenset({"tests", "benchmarks"})

    KIND_TEXT = {"shm": "shared-memory block", "pool": "worker pool"}

    def check_project(self, graph) -> list[Finding]:
        findings = []
        resource_inits = graph.resource_class_inits()
        for gid, record, summary in graph.functions():
            for resource in record["resources"]:
                kind = resource["kind"]
                if kind.startswith("project:"):
                    if graph.resolve(kind[len("project:"):]) not in resource_inits:
                        continue
                    what = "resource-owning object"
                elif kind in self.KIND_TEXT:
                    what = self.KIND_TEXT[kind]
                else:
                    continue
                if resource["escapes"]:
                    continue
                owner = f"'{resource['var']}' in " \
                        f"'{graph.display_name(gid)}'"
                if not resource["released"]:
                    findings.append(self.project_finding(
                        summary["path"], int(resource["lineno"]),
                        f"{what} {owner} is never released/closed on any "
                        "path; call close()/unlink()/terminate() in a "
                        "finally block or transfer ownership",
                    ))
                elif not resource["release_safe"]:
                    findings.append(self.project_finding(
                        summary["path"], int(resource["lineno"]),
                        f"{what} {owner} is released only on the normal "
                        "path; an exception between creation and release "
                        "leaks it — move the release into a finally block",
                        severity="warn",
                    ))
        return findings


class TelemetrySinkOnly(ProjectRule):
    """Invariant: all append-mode writes flow through the telemetry sink.

    ``obs/telemetry.py`` owns the single ``O_APPEND`` chokepoint whose
    one-``os.write``-per-record discipline makes concurrent appends
    atomic (DESIGN.md §11). A direct ``os.write``, append-mode
    ``open(..., "a")``, or ``os.open(..., O_APPEND)`` anywhere else can
    interleave partial lines with the sink and corrupt the JSONL streams
    every replay/report tool parses.
    """

    name = "telemetry-sink-only"
    rationale = (
        "append-mode writes outside obs/telemetry.py bypass the atomic "
        "O_APPEND sink chokepoint"
    )

    skip_profiles = frozenset({"tests", "benchmarks"})
    EXEMPT_SUFFIXES = ("obs/telemetry.py",)

    def exempt(self, path: str) -> bool:
        return path.replace("\\", "/").endswith(self.EXEMPT_SUFFIXES)

    def check_project(self, graph) -> list[Finding]:
        findings = []
        for gid, record, summary in graph.functions():
            for description, lineno in record["raw_appends"]:
                findings.append(self.project_finding(
                    summary["path"], int(lineno),
                    f"direct append-mode write ({description}) outside the "
                    "telemetry sink; emit through repro.obs.telemetry so "
                    "cross-process appends stay atomic",
                ))
        return findings


class QualityTelemetrySinkOnly(ProjectRule):
    """Invariant: the ``quality`` telemetry stream has one producer.

    Replay (:func:`repro.obs.health.replay`) and ``repro audit`` treat
    every ``quality`` record as ground truth written by
    :mod:`repro.obs.quality` — audits with measured recall, drift
    escalations with deduped severities. A second producer anywhere
    else could inject unaudited "audit" records or re-fire drift
    alerts, silently corrupting the calibration tables and the
    re-derived alert history.
    """

    name = "quality-telemetry-sink-only"
    rationale = (
        "emitting on the 'quality' telemetry stream outside "
        "obs/quality.py corrupts the replayed audit ground truth"
    )

    skip_profiles = frozenset({"tests", "benchmarks"})
    EXEMPT_SUFFIXES = ("obs/quality.py",)

    def exempt(self, path: str) -> bool:
        return path.replace("\\", "/").endswith(self.EXEMPT_SUFFIXES)

    def check_project(self, graph) -> list[Finding]:
        findings = []
        for gid, record, summary in graph.functions():
            for call in record["calls"]:
                resolved = call.get("resolved") or ""
                if (
                    resolved.endswith(".obs.telemetry.emit")
                    and call.get("arg0") == "quality"
                ):
                    findings.append(self.project_finding(
                        summary["path"], int(call["lineno"]),
                        "emit on the 'quality' telemetry stream outside "
                        "repro.obs.quality; report measurements through "
                        "the QualityMonitor so replay and `repro audit` "
                        "stay trustworthy",
                    ))
        return findings


class FallbackOnWorkerError(ProjectRule):
    """Invariant: every parallel dispatch call site handles the serial
    fallback.

    Parallelism is strictly an optimization (DESIGN.md §10): dispatch
    wrappers (``maybe_parallel_*`` over ``_dispatch``) signal any pool
    failure by returning ``None``, and the caller must run the serial
    path. A call site that uses the result without a ``None`` check (and
    outside any try/except) turns a recoverable pool failure into a
    crash or — worse — a silently wrong result.
    """

    name = "fallback-on-worker-error"
    rationale = (
        "dispatch-wrapper call sites must None-check the result (serial "
        "fallback) or sit under an exception handler"
    )

    skip_profiles = frozenset({"tests", "benchmarks"})

    def check_project(self, graph) -> list[Finding]:
        findings = []
        wrappers = graph.fallback_wrappers()
        if not wrappers:
            return findings
        for gid, record, summary in graph.functions():
            for call in record["calls"]:
                callee = graph.resolve(call.get("resolved"))
                if callee is None or callee not in wrappers:
                    continue
                assigned = call.get("assigned")
                handled = (
                    call.get("in_try")
                    or (assigned is not None
                        and assigned in record["none_checked"])
                )
                if not handled:
                    findings.append(self.project_finding(
                        summary["path"], int(call["lineno"]),
                        f"call to dispatch wrapper "
                        f"'{graph.display_name(callee)}' does not handle "
                        "the None fallback; check the result against None "
                        "and run the serial path (or wrap in try/except)",
                    ))
        return findings


# ------------------------------------------------------------------ #
_ALL_RULES = (
    NoGlobalNumpyRandom(),
    ForbiddenImport(),
    NoBarePrint(),
    NoSilentExcept(),
    NoWallclockInLibrary(),
    NoMutableDefaultArg(),
    ForkUnsafeWorkerReachable(),
    ShmLifecycle(),
    TelemetrySinkOnly(),
    QualityTelemetrySinkOnly(),
    FallbackOnWorkerError(),
)

RULES: dict[str, Rule] = {rule.name: rule for rule in _ALL_RULES}


def get_rules(names: Optional[Sequence[str]] = None) -> list[Rule]:
    """Resolve rule names (default: the full pack, registry order)."""
    if names is None:
        return list(_ALL_RULES)
    rules = []
    for name in names:
        rule = RULES.get(name)
        if rule is None:
            raise UnknownRuleError(
                f"unknown lint rule {name!r}; available: {sorted(RULES)}"
            )
        rules.append(rule)
    return rules
