"""Phase-2 call graph over module effect summaries.

Consumes the per-module summaries from :mod:`repro.lint.effects` and
answers the questions the whole-program rules ask:

* **resolution** — a dotted reference (``repro.db.kernels.
  probe_factorized``, ``helpers.unsafe``) to the function record it
  names, by longest-module-prefix match with unique-dotted-suffix
  fallback (summaries key modules by their *full path* dotted name, so
  ``src.repro.db.parallel`` matches an import of ``repro.db.parallel``);
* **worker entries** — functions handed to a pool fan-out call
  (``map_async``/``apply_async``/…), a ``Pool(initializer=...)`` or a
  ``Process(target=...)``, found directly *or* through dispatcher
  functions: if ``f``'s parameter ``task`` flows into ``map_async``,
  then every resolvable function passed to ``f`` in ``task``'s position
  is an entry (computed to a fix-point, so wrappers of wrappers work);
* **fork reachability** — BFS over resolved call edges from the worker
  entries, with predecessor chains kept for diagnostics ("via
  ``_dispatch → _filter_task → _attach``").

Resolution is deliberately conservative: an unresolved callee produces
no edge, so the fork-safety rule under-approximates reachability rather
than guessing (limitations — decorator wrappers are treated as
transparent, and calls through untyped values like ``predicate.
evaluate(...)`` do not resolve; see DESIGN.md §12).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


def global_id(module: str, qualname: str) -> str:
    return f"{module}::{qualname}"


class CallGraph:
    """Index + resolved edges over a set of module summaries."""

    def __init__(self, summaries: dict[str, dict[str, Any]]) -> None:
        #: display path -> module summary
        self.by_path = dict(summaries)
        #: dotted module name -> module summary
        self.modules: dict[str, dict[str, Any]] = {}
        for summary in summaries.values():
            self.modules[summary["module"]] = summary
        self._suffix_cache: dict[str, Optional[str]] = {}
        self._edges: Optional[dict[str, list[str]]] = None
        self._entries: Optional[dict[str, str]] = None
        self._reachable: Optional[dict[str, list[str]]] = None

    # -------------------------------------------------------------- #
    # lookup
    # -------------------------------------------------------------- #
    def functions(self) -> Iterator[tuple[str, dict[str, Any], dict[str, Any]]]:
        """Yield ``(gid, function record, module summary)`` for the index."""
        for summary in self.modules.values():
            for qualname, record in summary["functions"].items():
                yield global_id(summary["module"], qualname), record, summary

    def get(self, gid: str) -> Optional[dict[str, Any]]:
        module, _, qualname = gid.partition("::")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary["functions"].get(qualname)

    def path_of(self, gid: str) -> str:
        module = gid.partition("::")[0]
        summary = self.modules.get(module)
        return summary["path"] if summary else ""

    def display_name(self, gid: str) -> str:
        module, _, qualname = gid.partition("::")
        short = module.split(".src.")[-1]
        if short.startswith("src."):
            short = short[4:]
        return f"{short}.{qualname}"

    def _find_module(self, dotted: str) -> Optional[str]:
        """Module name for ``dotted`` (exact, else unique dotted suffix)."""
        if dotted in self.modules:
            return dotted
        cached = self._suffix_cache.get(dotted)
        if cached is not None or dotted in self._suffix_cache:
            return cached
        suffix = "." + dotted
        matches = [name for name in self.modules if name.endswith(suffix)]
        result = matches[0] if len(matches) == 1 else None
        self._suffix_cache[dotted] = result
        return result

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Dotted reference → gid of a known function (None if foreign)."""
        if not dotted:
            return None
        parts = dotted.split(".")
        # Longest module prefix first so ``pkg.mod.Class.method`` prefers
        # module ``pkg.mod`` over any module coincidentally named ``pkg``.
        for split in range(len(parts) - 1, 0, -1):
            module = self._find_module(".".join(parts[:split]))
            if module is None:
                continue
            rest = ".".join(parts[split:])
            functions = self.modules[module]["functions"]
            if rest in functions:
                return global_id(module, rest)
            if rest in self.modules[module]["classes"]:
                init = f"{rest}.__init__"
                if init in functions:
                    return global_id(module, init)
        return None

    # -------------------------------------------------------------- #
    # edges
    # -------------------------------------------------------------- #
    def edges(self) -> dict[str, list[str]]:
        if self._edges is None:
            edges: dict[str, list[str]] = {}
            for gid, record, _ in self.functions():
                out: list[str] = []
                for call in record["calls"]:
                    target = self.resolve(call.get("resolved"))
                    if target is not None and target != gid:
                        out.append(target)
                edges[gid] = out
            self._edges = edges
        return self._edges

    # -------------------------------------------------------------- #
    # worker entries (dispatch fix-point)
    # -------------------------------------------------------------- #
    def worker_entries(self) -> dict[str, str]:
        """gid → human description of how it reaches a worker process."""
        if self._entries is not None:
            return self._entries
        entries: dict[str, str] = {}
        #: gid → parameter names whose value flows into a pool dispatch.
        dispatchers: dict[str, set[str]] = {}

        for gid, record, _ in self.functions():
            for dispatch in record["dispatches"]:
                for ref in dispatch.get("args", []):
                    self._seed(
                        gid, record, ref, dispatchers, entries,
                        f"{dispatch['method']}() at "
                        f"{self.path_of(gid)}:{dispatch['lineno']}",
                    )
            for ref in record["spawn_refs"]:
                self._seed(
                    gid, record, ref, dispatchers, entries,
                    f"pool/process spawn at "
                    f"{self.path_of(gid)}:{ref['lineno']}",
                )

        # Fix-point: arguments passed to dispatchers in a dispatching
        # parameter position become entries (or mark the caller as a
        # dispatcher when the argument is itself a parameter).
        changed = True
        while changed:
            changed = False
            for gid, record, _ in self.functions():
                for call in record["calls"]:
                    callee = self.resolve(call.get("resolved"))
                    if callee is None or callee not in dispatchers:
                        continue
                    callee_record = self.get(callee)
                    if callee_record is None:
                        continue
                    params = list(callee_record["params"])
                    if callee_record.get("class") and params[:1] in (
                        ["self"], ["cls"]
                    ):
                        params = params[1:]
                    wanted = dispatchers[callee]
                    for ref in call.get("args", []):
                        name = None
                        if "pos" in ref and ref["pos"] < len(params):
                            name = params[ref["pos"]]
                        elif "kw" in ref:
                            name = ref["kw"]
                        if name not in wanted:
                            continue
                        why = (
                            f"passed to dispatcher "
                            f"{self.display_name(callee)}()"
                        )
                        if self._seed(
                            gid, record, ref, dispatchers, entries, why
                        ):
                            changed = True
        self._entries = entries
        return entries

    def _seed(self, gid, record, ref, dispatchers, entries, why) -> bool:
        """Register one dispatch argument; True if anything changed."""
        if "param" in ref:
            marked = dispatchers.setdefault(gid, set())
            if ref["param"] not in marked:
                marked.add(ref["param"])
                return True
            return False
        target = self.resolve(ref.get("ref"))
        if target is not None and target not in entries:
            entries[target] = why
            return True
        return False

    # -------------------------------------------------------------- #
    # reachability
    # -------------------------------------------------------------- #
    def worker_reachable(self) -> dict[str, list[str]]:
        """gid → chain of gids from a worker entry (entry first)."""
        if self._reachable is not None:
            return self._reachable
        edges = self.edges()
        chains: dict[str, list[str]] = {}
        queue: list[str] = []
        for entry in self.worker_entries():
            if entry not in chains:
                chains[entry] = [entry]
                queue.append(entry)
        while queue:
            current = queue.pop()
            for callee in edges.get(current, ()):
                if callee not in chains:
                    chains[callee] = [*chains[current], callee]
                    queue.append(callee)
        self._reachable = chains
        return chains

    def chain_text(self, gid: str) -> str:
        chain = self.worker_reachable().get(gid, [gid])
        return " -> ".join(self.display_name(g) for g in chain)

    # -------------------------------------------------------------- #
    # resource classes
    # -------------------------------------------------------------- #
    def resource_class_inits(self) -> set[str]:
        """gids of ``__init__`` methods that create a raw shm/pool resource."""
        inits: set[str] = set()
        for gid, record, _ in self.functions():
            if not record["qualname"].endswith(".__init__"):
                continue
            for resource in record["resources"]:
                if resource["kind"] in ("shm", "pool"):
                    inits.add(gid)
        return inits

    def fallback_wrappers(self) -> set[str]:
        """gids of dispatch wrappers that signal fallback by returning None.

        Base case: a function that itself calls a pool fan-out method and
        has an explicit ``return None``. Closure: a ``return None``
        function that calls a wrapper (``maybe_parallel_*`` over
        ``_dispatch``). Callers of these must handle the None fallback.
        """
        wrappers: set[str] = set()
        for gid, record, _ in self.functions():
            if record["dispatches"] and record["returns_none"]:
                wrappers.add(gid)
        changed = True
        while changed:
            changed = False
            for gid, record, _ in self.functions():
                if gid in wrappers or not record["returns_none"]:
                    continue
                for call in record["calls"]:
                    if self.resolve(call.get("resolved")) in wrappers:
                        wrappers.add(gid)
                        changed = True
                        break
        return wrappers
