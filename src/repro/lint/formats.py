"""Alternate lint output formats: SARIF for CI annotations, HTML reports.

``repro lint --format sarif`` emits SARIF 2.1.0 so findings render as
inline annotations in CI; ``--format html`` writes a self-contained
report (inline CSS, no external assets) matching the ``repro report``
idiom. Both formats carry the same data as ``--format json`` — rule
identity, location, severity, message — so any of the three can drive
tooling.
"""

from __future__ import annotations

from html import escape
from typing import Any

from .engine import PARSE_ERROR_RULE, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warn": "warning"}


def _rule_descriptors(report: LintReport) -> list[dict[str, Any]]:
    from .rules import RULES

    descriptors = []
    for name in report.rules:
        rule = RULES.get(name)
        descriptor: dict[str, Any] = {"id": name}
        if rule is not None:
            descriptor["shortDescription"] = {"text": rule.rationale}
            doc = (rule.__doc__ or "").strip()
            if doc:
                descriptor["fullDescription"] = {
                    "text": doc.splitlines()[0].strip()
                }
            descriptor["defaultConfiguration"] = {
                "level": _LEVELS.get(rule.severity, "error")
            }
        descriptors.append(descriptor)
    if any(f.rule == PARSE_ERROR_RULE for f in report.findings):
        descriptors.append({
            "id": PARSE_ERROR_RULE,
            "shortDescription": {"text": "file could not be parsed"},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def to_sarif(report: LintReport) -> dict[str, Any]:
    """SARIF 2.1.0 log object for the report's new findings."""
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v2": finding.fingerprint,
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "https://example.invalid/repro",
                    "rules": _rule_descriptors(report),
                },
            },
            "results": results,
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
        }],
    }


_HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
table { border-collapse: collapse; width: 100%; margin: 1rem 0; }
th, td { border: 1px solid #c9cbd8; padding: .35rem .6rem;
         text-align: left; font-size: .9rem; vertical-align: top; }
th { background: #4a4e69; color: #fff; }
tr:nth-child(even) { background: #f4f4f8; }
code { background: #eceef3; padding: .1rem .3rem; border-radius: 3px;
       font-size: .85rem; }
.sev-error { color: #b00020; font-weight: 600; }
.sev-warn { color: #9a6700; font-weight: 600; }
.summary { background: #f4f4f8; border-left: 4px solid #4a4e69;
           padding: .6rem 1rem; margin: 1rem 0; }
.ok { border-left-color: #2e7d32; }
""".strip()


def to_html(report: LintReport, title: str = "repro lint report") -> str:
    """Self-contained HTML report (inline CSS, no external assets)."""
    ok = not report.findings
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_HTML_CSS}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        "<div class='summary{}'>".format(" ok" if ok else ""),
        "<strong>{}</strong> — {} file(s) checked, {} rule(s), "
        "{} error(s), {} warning(s), {} baselined".format(
            "clean" if ok else f"{len(report.findings)} new finding(s)",
            report.files_checked,
            len(report.rules),
            report.errors,
            report.warnings,
            report.baselined,
        ),
        "</div>",
    ]
    if report.findings:
        out.append("<table>")
        out.append(
            "<tr><th>Location</th><th>Rule</th>"
            "<th>Severity</th><th>Message</th></tr>"
        )
        for finding in report.findings:
            severity_class = (
                "sev-error" if finding.severity == "error" else "sev-warn"
            )
            out.append(
                "<tr>"
                f"<td><code>{escape(finding.path)}:{finding.line}:"
                f"{finding.col}</code></td>"
                f"<td><code>{escape(finding.rule)}</code></td>"
                f"<td class='{severity_class}'>"
                f"{escape(finding.severity)}</td>"
                f"<td>{escape(finding.message)}</td>"
                "</tr>"
            )
        out.append("</table>")
    out.append(
        "<p>Rules: "
        + ", ".join(f"<code>{escape(name)}</code>" for name in report.rules)
        + "</p>"
    )
    out.append("</body></html>")
    return "\n".join(out)
