"""Phase-1 summarizer: one JSON-able effect summary per module.

The whole-program rules (:mod:`repro.lint.rules`, project pack) never
look at an AST directly — they consume the *summary* this module
produces for each file: the import map (absolute and relative imports
resolved against the module's own dotted name), module-level symbols,
and a per-function record of

* **calls** — best-effort resolved callee names plus any function
  references passed as arguments (the raw material of the call graph);
* **hazards** — fork-unsafety effects: module-global writes, stores to
  attributes of imported/module-level objects, lock acquisition,
  thread creation, fd opens, global-numpy-RNG use;
* **dispatches / spawn targets** — worker-pool fan-out sites
  (``map_async`` and friends, ``Pool(initializer=...)``,
  ``Process(target=...)``) that seed the fork-reachability walk;
* **resources** — shared-memory / pool creations with a local
  lifecycle verdict (released? released on exception paths? escapes?);
* **raw appends** — direct ``os.write`` / append-mode ``open`` /
  ``O_APPEND`` sites for the telemetry-sink chokepoint rule.

Summaries are plain dicts of JSON scalars/lists so the index can cache
them in ``.lint_cache.json`` keyed on file content hashes and skip the
parse entirely when a file has not changed.

Everything is approximate in the safe direction documented per rule:
resolution failures produce *no* edge/effect rather than a guess, and
the project rules only act on what resolved.
"""

from __future__ import annotations

import ast
from typing import Any, Optional

#: Pool fan-out methods whose function argument runs in a worker process.
DISPATCH_METHODS = frozenset({
    "map_async", "apply_async", "starmap_async", "imap", "imap_unordered",
})

#: Constructor calls whose keyword points at worker-process entry code.
SPAWN_KEYWORDS = {"Pool": "initializer", "Process": "target"}

#: Method names that release a tracked resource.
RELEASE_METHODS = frozenset({
    "close", "unlink", "terminate", "release", "join", "shutdown",
})

#: numpy.random attributes that construct explicit generators (allowed).
ALLOWED_RNG = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
})

#: Callables that open an fd / OS handle inside the calling process.
FD_OPENERS = frozenset({
    "open", "os.open", "os.fdopen", "socket.socket",
    "socket.create_connection",
})

_LOCK_CTOR_MARKERS = ("Lock", "RLock", "Condition", "Semaphore")


def module_name_for(path: str) -> str:
    """Dotted module name derived from the display path.

    The *full* path becomes the dotted name (``src/repro/db/parallel.py``
    → ``src.repro.db.parallel``); the call graph resolves imports by
    unique dotted-suffix match, so the extra leading components are
    harmless and keep names collision-free across trees.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


def _attr_chain(node: ast.AST) -> Optional[tuple[str, list[str]]]:
    """``a.b.c`` → ``("a", ["b", "c"])``; None for non-Name roots."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return node.id, list(reversed(chain))


class _ModuleScope:
    """Import map + module-level symbols shared by every function visitor."""

    def __init__(self, tree: ast.Module, module: str) -> None:
        self.module = module
        self.imports: dict[str, str] = {}
        self.functions: set[str] = set()
        self.classes: dict[str, list[str]] = {}
        self.module_assigns: dict[str, Optional[str]] = {}
        self._collect(tree)

    def _package(self, level: int) -> str:
        parts = self.module.split(".")
        keep = len(parts) - level
        return ".".join(parts[:keep]) if keep > 0 else ""

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._package(node.level)
                    if node.module:
                        base = f"{base}.{node.module}" if base else node.module
                else:
                    base = node.module or ""
                if not base:
                    continue
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                methods = [
                    item.name for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                self.classes[node.name] = methods
            elif isinstance(node, ast.Assign):
                value = self._ctor_of(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns[target.id] = value

    def _ctor_of(self, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        return self.resolve_callable(node.func, {}, None)

    def resolve_callable(
        self,
        func: ast.AST,
        local_types: dict[str, str],
        cls: Optional[str],
    ) -> Optional[str]:
        """Best-effort dotted name of a call target (None if unresolved)."""
        ref = _attr_chain(func)
        if ref is None:
            return None
        root, chain = ref
        if root == "self" and cls is not None:
            base = f"{self.module}.{cls}"
        elif root in local_types:
            base = local_types[root]
        elif root in self.imports:
            base = self.imports[root]
        elif root in self.functions or root in self.classes:
            base = f"{self.module}.{root}"
        elif root in ("open",) and not chain:
            return "open"
        else:
            return None
        return ".".join([base, *chain]) if chain else base


class _FunctionSummarizer(ast.NodeVisitor):
    """Walks one function body (or the module top level) collecting effects."""

    def __init__(
        self,
        scope: _ModuleScope,
        qualname: str,
        cls: Optional[str],
        params: list[str],
    ) -> None:
        self.scope = scope
        self.qualname = qualname
        self.cls = cls
        self.params = params
        self.global_names: set[str] = set()
        self.local_types: dict[str, str] = {}
        self.calls: list[dict[str, Any]] = []
        self.dispatches: list[dict[str, Any]] = []
        self.spawn_refs: list[dict[str, Any]] = []
        self.hazards: dict[str, list[list[Any]]] = {
            "global_write": [], "attr_write": [], "lock_acquire": [],
            "thread_create": [], "fd_open": [], "global_rng": [],
        }
        self.raw_appends: list[list[Any]] = []
        self.resources: list[dict[str, Any]] = []
        self.returns_none = False
        self.none_checked: set[str] = set()
        self._try_depth = 0
        #: id(Call node) -> Name the result is assigned to (fallback rule).
        self._pending_assign: dict[int, str] = {}

    # -------------------------------------------------------------- #
    # scaffolding
    # -------------------------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None  # nested defs get their own summarizer

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_ClassDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def visit_Try(self, node: ast.Try) -> None:
        has_handlers = bool(node.handlers)
        if has_handlers:
            self._try_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        for handler in node.handlers:
            self.visit(handler)
        if has_handlers:
            self._try_depth -= 1
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None or (
            isinstance(node.value, ast.Constant) and node.value.value is None
        ):
            self.returns_none = True
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        is_none_test = any(
            isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
            for op in node.ops
        ) and any(
            isinstance(o, ast.Constant) and o.value is None for o in operands
        )
        if is_none_test:
            for operand in operands:
                if isinstance(operand, ast.Name):
                    self.none_checked.add(operand.id)
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # stores
    # -------------------------------------------------------------- #
    def _record_store(self, target: ast.AST, value: ast.AST, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self.hazards["global_write"].append([target.id, lineno])
            ctor = None
            if isinstance(value, ast.Call):
                ctor = self.scope.resolve_callable(
                    value.func, self.local_types, self.cls
                )
            if ctor is not None:
                self.local_types[target.id] = ctor
        elif isinstance(target, ast.Attribute):
            ref = _attr_chain(target)
            if ref is None:
                return
            root, chain = ref
            if root in ("self", "cls") or root in self.params:
                return
            if (
                root in self.scope.imports
                or root in self.scope.module_assigns
                or root in self.global_names
            ):
                spelled = ".".join([root, *chain])
                self.hazards["attr_write"].append([spelled, lineno])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, value, lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node.value, node.lineno)
        if (
            isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            self._pending_assign[id(node.value)] = node.targets[0].id
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target, node.value, node.lineno)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                ctor = self.scope.module_assigns.get(expr.id)
                if ctor and any(m in ctor for m in _LOCK_CTOR_MARKERS):
                    self.hazards["lock_acquire"].append(
                        [f"with {expr.id}", node.lineno]
                    )
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -------------------------------------------------------------- #
    # calls
    # -------------------------------------------------------------- #
    def _arg_refs(self, call: ast.Call) -> list[dict[str, Any]]:
        refs: list[dict[str, Any]] = []
        for position, arg in enumerate(call.args):
            ref = self._one_ref(arg)
            if ref is not None:
                refs.append({"pos": position, **ref})
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            ref = self._one_ref(keyword.value)
            if ref is not None:
                refs.append({"kw": keyword.arg, **ref})
        return refs

    def _one_ref(self, node: ast.AST) -> Optional[dict[str, Any]]:
        if isinstance(node, ast.Name):
            if node.id in self.params:
                return {"param": node.id}
            resolved = self.scope.resolve_callable(
                node, self.local_types, self.cls
            )
            return {"ref": resolved} if resolved else None
        if isinstance(node, ast.Attribute):
            resolved = self.scope.resolve_callable(
                node, self.local_types, self.cls
            )
            return {"ref": resolved} if resolved else None
        return None

    def _flags_contain_append(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "O_APPEND":
                return True
            if isinstance(sub, ast.Name) and sub.id == "O_APPEND":
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.scope.resolve_callable(
            node.func, self.local_types, self.cls
        )
        chain_ref = _attr_chain(node.func)
        leaf = chain_ref[1][-1] if chain_ref and chain_ref[1] else (
            chain_ref[0] if chain_ref else None
        )

        entry: dict[str, Any] = {
            "resolved": resolved,
            "lineno": node.lineno,
            "in_try": self._try_depth > 0,
        }
        assigned = self._pending_assign.pop(id(node), None)
        if assigned is not None:
            entry["assigned"] = assigned
        args = self._arg_refs(node)
        if args:
            entry["args"] = args
        # First positional argument when it is a literal string — rules
        # matching stream-keyed sinks (e.g. telemetry.emit("quality", ...))
        # dispatch on it.
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            entry["arg0"] = node.args[0].value
        self.calls.append(entry)

        if leaf in DISPATCH_METHODS and chain_ref and chain_ref[1]:
            self.dispatches.append(
                {"lineno": node.lineno, "method": leaf, "args": args}
            )
        if leaf in SPAWN_KEYWORDS:
            wanted = SPAWN_KEYWORDS[leaf]
            for ref in args:
                if ref.get("kw") == wanted:
                    self.spawn_refs.append({"lineno": node.lineno, **ref})

        if resolved is not None:
            if resolved == "threading.Thread":
                self.hazards["thread_create"].append([resolved, node.lineno])
            if resolved in FD_OPENERS:
                self.hazards["fd_open"].append([resolved, node.lineno])
            parts = resolved.split(".")
            if (
                resolved.startswith("numpy.random.")
                and len(parts) == 3
                and parts[-1] not in ALLOWED_RNG
            ):
                self.hazards["global_rng"].append([resolved, node.lineno])
            if resolved == "os.write":
                self.raw_appends.append(["os.write", node.lineno])
            if resolved == "os.open" and any(
                self._flags_contain_append(arg) for arg in node.args[1:2]
            ):
                self.raw_appends.append(["os.open(O_APPEND)", node.lineno])
        if leaf == "acquire" and chain_ref and chain_ref[1]:
            spelled = ".".join([chain_ref[0], *chain_ref[1]])
            self.hazards["lock_acquire"].append([spelled, node.lineno])
        if resolved == "open" or (
            isinstance(node.func, ast.Name) and node.func.id == "open"
        ):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and "a" in mode.value
            ):
                self.raw_appends.append(
                    [f"open(..., {mode.value!r})", node.lineno]
                )
        self.generic_visit(node)

    def summarize(self, body: list[ast.stmt], lineno: int) -> dict[str, Any]:
        for stmt in body:
            self.visit(stmt)
        self._analyze_resources(body)
        return {
            "qualname": self.qualname,
            "class": self.cls,
            "lineno": lineno,
            "params": list(self.params),
            "calls": self.calls,
            "dispatches": self.dispatches,
            "spawn_refs": self.spawn_refs,
            "hazards": self.hazards,
            "raw_appends": self.raw_appends,
            "resources": self.resources,
            "returns_none": self.returns_none,
            "none_checked": sorted(self.none_checked),
        }

    # -------------------------------------------------------------- #
    # resource lifecycle
    # -------------------------------------------------------------- #
    def _is_resource_ctor(self, resolved: Optional[str], call: ast.Call):
        """``(kind, tracked)`` for a creation call, or ``(None, False)``."""
        if resolved is None:
            return None, False
        leaf = resolved.split(".")[-1]
        if leaf == "SharedMemory":
            create = any(
                k.arg == "create"
                and isinstance(k.value, ast.Constant)
                and bool(k.value.value)
                for k in call.keywords
            )
            return ("shm" if create else "shm_attach"), create
        if leaf == "Pool":
            return "pool", True
        # Project classes (capitalized leaf) may wrap a tracked resource
        # in __init__ — recorded here, filtered against the index's
        # resource-class set by the shm-lifecycle rule.
        bare = leaf.lstrip("_")
        if bare and bare[0].isupper():
            return f"project:{resolved}", True
        return None, False

    def _analyze_resources(self, body: list[ast.stmt]) -> None:
        finally_ids: set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Try):
                    for final_stmt in node.finalbody:
                        for sub in ast.walk(final_stmt):
                            finally_ids.add(id(sub))

        creations: list[tuple[str, str, int]] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                resolved = self.scope.resolve_callable(
                    node.value.func, self.local_types, self.cls
                )
                kind, tracked = self._is_resource_ctor(resolved, node.value)
                if not tracked or kind is None:
                    continue
                target = node.targets[0] if node.targets else None
                if (
                    isinstance(target, ast.Name)
                    and target.id not in self.global_names
                ):
                    creations.append((kind, target.id, node.lineno))

        for kind, var, lineno in creations:
            released, release_safe = self._release_state(
                body, var, lineno, finally_ids
            )
            self.resources.append({
                "kind": kind,
                "var": var,
                "lineno": lineno,
                "released": released,
                "release_safe": release_safe,
                "escapes": self._escapes(body, var, lineno),
            })

    def _release_state(
        self, body, var: str, after: int, finally_ids: set[int]
    ) -> tuple[bool, bool]:
        released = False
        release_safe = False
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in RELEASE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == var
                    and node.lineno >= after
                ):
                    released = True
                    if id(node) in finally_ids:
                        release_safe = True
        return released, release_safe

    def _escapes(self, body, var: str, after: int) -> bool:
        """True when ownership of ``var`` transfers out of this function.

        Only a *bare name* transfers ownership — ``return block``,
        ``register(block)``, ``self.blocks.append(block)``, ``[block]``.
        A derived value (``return pool.map(...)``, ``bytes(block.buf)``)
        borrows the resource without taking over its release, so it does
        not absolve the creator.
        """
        def is_bare(node: Optional[ast.AST]) -> bool:
            return isinstance(node, ast.Name) and node.id == var

        for stmt in body:
            for node in ast.walk(stmt):
                lineno = getattr(node, "lineno", 0)
                if lineno and lineno < after:
                    continue
                if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    if is_bare(getattr(node, "value", None)):
                        return True
                if isinstance(node, ast.Call):
                    operands = [
                        *node.args,
                        *[k.value for k in node.keywords],
                    ]
                    if any(is_bare(a) for a in operands):
                        return True
                if isinstance(node, ast.Assign):
                    stores_out = any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets
                    ) or any(
                        isinstance(t, ast.Name) and t.id in self.global_names
                        for t in node.targets
                    )
                    if stores_out and self._mentions(node.value, var):
                        return True
                if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                    if any(
                        isinstance(e, ast.Name) and e.id == var
                        for e in node.elts
                    ):
                        return True
        return False

    @staticmethod
    def _mentions(node: ast.AST, var: str) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id == var
            for sub in ast.walk(node)
        )


def _param_names(args: ast.arguments) -> list[str]:
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def summarize_module(tree: ast.Module, path: str) -> dict[str, Any]:
    """Build the whole-module effect summary the project index stores."""
    module = module_name_for(path)
    scope = _ModuleScope(tree, module)
    functions: dict[str, dict[str, Any]] = {}

    def add_function(node, cls: Optional[str]) -> None:
        qualname = f"{cls}.{node.name}" if cls else node.name
        summarizer = _FunctionSummarizer(
            scope, qualname, cls, _param_names(node.args)
        )
        functions[qualname] = summarizer.summarize(node.body, node.lineno)

    top_level: list[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(item, node.name)
        else:
            top_level.append(node)
    module_summarizer = _FunctionSummarizer(scope, "<module>", None, [])
    functions["<module>"] = module_summarizer.summarize(top_level, 1)

    return {
        "module": module,
        "path": path,
        "imports": dict(scope.imports),
        "classes": {name: list(m) for name, m in scope.classes.items()},
        "module_assigns": dict(scope.module_assigns),
        "functions": functions,
    }
