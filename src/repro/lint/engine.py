"""Core of the project linter: findings, suppressions, baselines, reports.

The engine runs in two phases (DESIGN.md §12). Phase 1 walks Python
files, parses each one once with :mod:`ast`, hands the tree to every
per-file :class:`~repro.lint.rules.Rule`, and builds the module effect
summary (:mod:`repro.lint.effects`); all phase-1 outputs are cached in
``.lint_cache.json`` keyed on content hashes (:mod:`repro.lint.index`).
Phase 2 assembles the summaries into a
:class:`~repro.lint.callgraph.CallGraph` and runs the whole-program
:class:`~repro.lint.rules.ProjectRule` pack over it.

Four layers filter what a rule reports before it becomes a *new*
finding:

* per-rule path exemptions (``Rule.exempt``) — e.g. the print rule skips
  the CLI entry point and the console implementation;
* tree profiles — ``tests/`` and ``benchmarks/`` run a relaxed rule
  subset (``Rule.skip_profiles``, ``ForbiddenImport.PROFILE_EXTRA``);
* inline suppressions — a ``# lint: disable=<rule>[,<rule>...]`` comment
  on the flagged line (or ``# lint: disable`` for every rule);
* a committed baseline of grandfathered findings, matched by
  ``path:rule:<content-hash of the flagged line>`` fingerprint so edits
  elsewhere in a file never invalidate it (see :class:`Baseline`).

Everything here is stdlib-only so the linter can never drag the library
into a dependency it would itself have to flag.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence

from .index import LintCache, content_hash, line_hash, line_hashes, rules_key

#: Marker used in the suppression map for "every rule on this line".
ALL_RULES = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\- ]+))?"
)

#: Rule id used for files the parser rejects (always severity error).
PARSE_ERROR_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    #: Content hash of the flagged source line (baseline fingerprint).
    line_hash: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Keyed on the *content* of the flagged line, not its number, so
        unrelated edits above a grandfathered finding don't churn the
        baseline.
        """
        return f"{self.path}:{self.rule}:{self.line_hash}"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "line_hash": self.line_hash,
        }


def profile_for(path: str) -> str:
    """Tree profile of a display path: library, tests, or benchmarks."""
    parts = path.replace("\\", "/").split("/")[:-1]
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "library"


class FileContext:
    """A parsed source file plus its inline-suppression map."""

    def __init__(
        self, path: str, source: str, profile: str = "library"
    ) -> None:
        self.path = path
        self.source = source
        self.profile = profile
        self.suppressions = _parse_suppressions(source)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (ALL_RULES in rules or rule in rules)


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number → rule names disabled there via comments.

    Comments are read with :mod:`tokenize` so a ``# lint: disable`` inside
    a string literal is never mistaken for a directive.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            names = match.group("rules")
            line = token.start[0]
            bucket = suppressions.setdefault(line, set())
            if names is None:
                bucket.add(ALL_RULES)
            else:
                bucket.update(
                    name.strip() for name in names.split(",") if name.strip()
                )
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return suppressions


# ------------------------------------------------------------------ #
# baseline
# ------------------------------------------------------------------ #
#: Default baseline filename looked up next to the lint invocation.
DEFAULT_BASELINE = "lint_baseline.json"

BASELINE_VERSION = 2


class BaselineError(ValueError):
    """Raised when a baseline file cannot be read or has a bad shape."""


class Baseline:
    """Multiset of grandfathered finding fingerprints.

    A :class:`Counter` rather than a set: two identical lines in one file
    hash identically, and each baseline entry should absolve exactly one
    finding, not every copy.
    """

    def __init__(self, counts: Optional[Counter] = None) -> None:
        self.counts: Counter = counts if counts is not None else Counter()

    @property
    def empty(self) -> bool:
        return not +self.counts

    def consume(self, fingerprint: str) -> bool:
        """True (and decrement) if the fingerprint is grandfathered."""
        if self.counts[fingerprint] > 0:
            self.counts[fingerprint] -= 1
            return True
        return False


def _migrate_v1_entry(entry: dict) -> Optional[str]:
    """v1 ``{path, rule, line}`` → v2 fingerprint, by hashing the line.

    Reads the *current* file at the recorded path: v1 baselines matched
    by live line number, so the recorded line in today's checkout is the
    grandfathered one. An unreadable file or out-of-range line means the
    finding is gone — the entry is dropped, which is the correct upgrade.
    """
    try:
        with open(entry["path"], encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        flagged = lines[int(entry["line"]) - 1]
    except (OSError, UnicodeDecodeError, IndexError, ValueError):
        return None
    return f"{entry['path']}:{entry['rule']}:{line_hash(flagged)}"


def load_baseline(path: str) -> Baseline:
    """Read a baseline file (v1 entries are migrated on the fly)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    counts: Counter = Counter()
    for entry in payload["findings"]:
        try:
            if "line_hash" in entry:
                fingerprint = (
                    f"{entry['path']}:{entry['rule']}:{entry['line_hash']}"
                )
            else:
                fingerprint = _migrate_v1_entry(entry)
                if fingerprint is None:
                    continue
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}"
            ) from exc
        counts[fingerprint] += 1
    return Baseline(counts)


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline (v2)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "path": f.path,
                "rule": f.rule,
                "line_hash": f.line_hash,
                # advisory only — humans locate the finding by this, the
                # matcher never reads it
                "line": f.line,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# ------------------------------------------------------------------ #
# running
# ------------------------------------------------------------------ #
@dataclass
class LintReport:
    """Outcome of one lint run: new findings plus bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)
    cache_hits: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity != "error")

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def exit_code_for(self, strict_severity: bool = False) -> int:
        """Exit status; under ``--strict-severity`` only errors fail."""
        if strict_severity:
            return 1 if self.errors else 0
        return self.exit_code

    def to_json(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "rules": self.rules,
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "errors": self.errors,
            "warnings": self.warnings,
            "findings": [f.to_json() for f in self.findings],
        }

    def format_human(self) -> str:
        lines = [f.format() for f in self.findings]
        if self.findings or self.baselined:
            summary = (
                f"lint: {len(self.findings)} new finding(s) "
                f"({self.errors} error(s), {self.warnings} warning(s)), "
                f"{self.baselined} baselined, "
                f"{self.files_checked} file(s) checked"
            )
        else:
            summary = (
                f"lint: OK ({self.files_checked} file(s) checked, "
                f"{len(self.rules)} rule(s))"
            )
        lines.append(summary)
        return "\n".join(lines)


def discover_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(os.path.normpath(p) for p in found))


def _display_path(path: str) -> str:
    """Repo-relative, forward-slash path used in findings and baselines."""
    cwd = os.getcwd()
    absolute = os.path.abspath(path)
    if absolute.startswith(cwd + os.sep):
        absolute = absolute[len(cwd) + 1:]
    return absolute.replace(os.sep, "/")


def _attach_line_hash(finding: Finding, hashes: Sequence[str]) -> Finding:
    if 1 <= finding.line <= len(hashes):
        return replace(finding, line_hash=hashes[finding.line - 1])
    return finding


def _phase1_entry(
    display: str,
    source: str,
    profile: str,
    rules: Sequence,
    sha: str,
    key: str,
) -> dict[str, Any]:
    """Parse + per-file rules + effect summary for one file (cacheable)."""
    from .effects import summarize_module

    hashes = line_hashes(source)
    entry: dict[str, Any] = {
        "sha": sha,
        "rules_key": key,
        "profile": profile,
        "line_hashes": hashes,
        "summary": None,
        "suppressions": {},
        "findings": [],
    }
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        finding = Finding(
            PARSE_ERROR_RULE,
            display,
            exc.lineno or 1,
            exc.offset or 1,
            f"syntax error: {exc.msg}",
        )
        entry["findings"] = [_attach_line_hash(finding, hashes).to_json()]
        return entry

    context = FileContext(display, source, profile)
    entry["suppressions"] = {
        str(line): sorted(names)
        for line, names in context.suppressions.items()
    }
    findings: list[Finding] = []
    for rule in rules:
        if rule.skip(display, profile):
            continue
        for finding in rule.check(context, tree):
            if not context.is_suppressed(finding.rule, finding.line):
                findings.append(_attach_line_hash(finding, hashes))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    entry["findings"] = [f.to_json() for f in findings]
    entry["summary"] = summarize_module(tree, display)
    return entry


def lint_file(path: str, rules: Sequence) -> list[Finding]:
    """Lint one file with the given rule instances (no baseline/cache)."""
    display = _display_path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(PARSE_ERROR_RULE, display, 1, 1, f"cannot read file: {exc}")
        ]
    entry = _phase1_entry(
        display, source, profile_for(display), rules,
        content_hash(source), rules_key([r.name for r in rules]),
    )
    return [Finding(**f) for f in entry["findings"]]


def _entry_suppressed(entry: dict[str, Any], rule: str, line: int) -> bool:
    names = entry.get("suppressions", {}).get(str(line))
    return names is not None and (ALL_RULES in names or rule in names)


def run_lint(
    paths: Sequence[str],
    rule_names: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    cache_path: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` and return the report of *new* findings.

    ``rule_names`` restricts the rule pack (default: every registered
    rule); unknown names raise :class:`~repro.lint.rules.UnknownRuleError`.
    ``baseline_path`` filters out grandfathered fingerprints.
    ``cache_path`` enables the phase-1 cache (``None``, the library
    default, never touches disk; the CLI defaults to ``.lint_cache.json``).
    """
    from .callgraph import CallGraph
    from .rules import ProjectRule, get_rules

    rules = get_rules(rule_names)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    key = rules_key([r.name for r in file_rules])
    cache = LintCache(cache_path)
    baseline = load_baseline(baseline_path) if baseline_path else Baseline()
    report = LintReport(rules=[rule.name for rule in rules])

    entries: dict[str, dict[str, Any]] = {}
    summaries: dict[str, dict[str, Any]] = {}
    raw_findings: list[Finding] = []

    # ---- phase 1: per-file rules + effect summaries (cached) ---- #
    for path in discover_files(paths):
        report.files_checked += 1
        display = _display_path(path)
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raw_findings.append(Finding(
                PARSE_ERROR_RULE, display, 1, 1, f"cannot read file: {exc}"
            ))
            continue
        sha = content_hash(source)
        entry = cache.lookup(display, sha, key)
        if entry is None:
            entry = _phase1_entry(
                display, source, profile_for(display), file_rules, sha, key
            )
            cache.store(display, key, entry)
        entries[display] = entry
        if entry.get("summary") is not None:
            summaries[display] = entry["summary"]
        raw_findings.extend(Finding(**f) for f in entry["findings"])

    # ---- phase 2: whole-program rules over the call graph ---- #
    if project_rules and summaries:
        graph = CallGraph(summaries)
        for rule in project_rules:
            for finding in rule.check_project(graph):
                entry = entries.get(finding.path)
                if entry is None:
                    continue  # anchored outside the linted file set
                if rule.skip(finding.path, entry["profile"]):
                    continue
                if _entry_suppressed(entry, finding.rule, finding.line):
                    continue
                raw_findings.append(
                    _attach_line_hash(finding, entry["line_hashes"])
                )

    raw_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in raw_findings:
        if baseline.consume(finding.fingerprint):
            report.baselined += 1
        else:
            report.findings.append(finding)

    cache.save()
    report.cache_hits = cache.hits
    return report
