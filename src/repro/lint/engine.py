"""Core of the project linter: findings, suppressions, baselines, reports.

The engine walks Python files, parses each one once with :mod:`ast`, and
hands the tree to every active :class:`~repro.lint.rules.Rule`. Three
layers filter what a rule reports before it becomes a *new* finding:

* per-rule path exemptions (``Rule.exempt``) — e.g. the print rule skips
  the CLI entry point and the console implementation;
* inline suppressions — a ``# lint: disable=<rule>[,<rule>...]`` comment
  on the flagged line (or ``# lint: disable`` for every rule);
* a committed baseline file of grandfathered findings, matched by
  ``path:rule:line`` fingerprint (see :func:`load_baseline`).

Everything here is stdlib-only so the linter can never drag the library
into a dependency it would itself have to flag.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: Marker used in the suppression map for "every rule on this line".
ALL_RULES = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\- ]+))?"
)

#: Rule id used for files the parser rejects (always severity error).
PARSE_ERROR_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching."""
        return f"{self.path}:{self.rule}:{self.line}"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class FileContext:
    """A parsed source file plus its inline-suppression map."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.suppressions = _parse_suppressions(source)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (ALL_RULES in rules or rule in rules)


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number → rule names disabled there via comments.

    Comments are read with :mod:`tokenize` so a ``# lint: disable`` inside
    a string literal is never mistaken for a directive.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            names = match.group("rules")
            line = token.start[0]
            bucket = suppressions.setdefault(line, set())
            if names is None:
                bucket.add(ALL_RULES)
            else:
                bucket.update(
                    name.strip() for name in names.split(",") if name.strip()
                )
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return suppressions


# ------------------------------------------------------------------ #
# baseline
# ------------------------------------------------------------------ #
#: Default baseline filename looked up next to the lint invocation.
DEFAULT_BASELINE = "lint_baseline.json"

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file cannot be read or has a bad shape."""


def load_baseline(path: str) -> set[str]:
    """Read a baseline file into a set of finding fingerprints."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    fingerprints = set()
    for entry in payload["findings"]:
        try:
            fingerprints.add(f"{entry['path']}:{entry['rule']}:{entry['line']}")
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}"
            ) from exc
    return fingerprints


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": f.path, "rule": f.rule, "line": f.line}
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# ------------------------------------------------------------------ #
# running
# ------------------------------------------------------------------ #
@dataclass
class LintReport:
    """Outcome of one lint run: new findings plus bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "rules": self.rules,
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "findings": [f.to_json() for f in self.findings],
        }

    def format_human(self) -> str:
        lines = [f.format() for f in self.findings]
        summary = (
            f"lint: {len(self.findings)} new finding(s), "
            f"{self.baselined} baselined, {self.files_checked} file(s) checked"
            if self.findings or self.baselined
            else f"lint: OK ({self.files_checked} file(s) checked, "
            f"{len(self.rules)} rule(s))"
        )
        lines.append(summary)
        return "\n".join(lines)


def discover_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(os.path.normpath(p) for p in found))


def _display_path(path: str) -> str:
    """Repo-relative, forward-slash path used in findings and baselines."""
    cwd = os.getcwd()
    absolute = os.path.abspath(path)
    if absolute.startswith(cwd + os.sep):
        absolute = absolute[len(cwd) + 1:]
    return absolute.replace(os.sep, "/")


def lint_file(path: str, rules: Sequence) -> list[Finding]:
    """Lint one file with the given rule instances (no baseline applied)."""
    display = _display_path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(PARSE_ERROR_RULE, display, 1, 1, f"cannot read file: {exc}")
        ]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                PARSE_ERROR_RULE,
                display,
                exc.lineno or 1,
                (exc.offset or 1),
                f"syntax error: {exc.msg}",
            )
        ]
    context = FileContext(display, source)
    findings: list[Finding] = []
    for rule in rules:
        if rule.exempt(display):
            continue
        for finding in rule.check(context, tree):
            if not context.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def run_lint(
    paths: Sequence[str],
    rule_names: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` and return the report of *new* findings.

    ``rule_names`` restricts the rule pack (default: every registered
    rule); unknown names raise :class:`~repro.lint.rules.UnknownRuleError`.
    ``baseline_path`` filters out grandfathered fingerprints.
    """
    from .rules import get_rules

    rules = get_rules(rule_names)
    baseline = load_baseline(baseline_path) if baseline_path else set()
    report = LintReport(rules=[rule.name for rule in rules])
    for path in discover_files(paths):
        report.files_checked += 1
        for finding in lint_file(path, rules):
            if finding.fingerprint in baseline:
                report.baselined += 1
            else:
                report.findings.append(finding)
    return report
