"""Deterministic feature-hashed token embeddings.

Stand-in for the paper's modified sentence-BERT: a hashing-trick embedder
that maps token lists to fixed-dimension vectors. Each token gets a stable
pseudo-random direction (seeded by a hash of the token text), and a
sequence embeds as the L2-normalized sum of its token directions. Two
token lists that share many tokens therefore land near each other in
cosine space — the only property the ASQP-RL pipeline actually relies on
("similar queries ⇒ nearby vectors").
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

DEFAULT_DIM = 64


def _token_seed(token: str) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class TokenHasher:
    """Maps tokens to stable unit vectors and token lists to embeddings.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    cache_size:
        Token directions are memoized; the cache is cleared once it exceeds
        this many entries (workloads here are far below the limit).
    """

    def __init__(self, dim: int = DEFAULT_DIM, cache_size: int = 200_000) -> None:
        if dim < 2:
            raise ValueError(f"embedding dim must be >= 2, got {dim}")
        self.dim = dim
        self._cache_size = cache_size
        self._cache: dict[str, np.ndarray] = {}

    def token_vector(self, token: str) -> np.ndarray:
        """The stable unit direction of one token."""
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        rng = np.random.default_rng(_token_seed(token))
        vector = rng.standard_normal(self.dim)
        vector /= np.linalg.norm(vector)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[token] = vector
        return vector

    def embed(self, tokens: Sequence[str], weights: Sequence[float] = ()) -> np.ndarray:
        """L2-normalized weighted sum of token directions.

        An empty token list embeds as the zero vector.
        """
        if not tokens:
            return np.zeros(self.dim)
        if weights and len(weights) != len(tokens):
            raise ValueError(
                f"{len(weights)} weights for {len(tokens)} tokens"
            )
        total = np.zeros(self.dim)
        for i, token in enumerate(tokens):
            weight = weights[i] if weights else 1.0
            total += weight * self.token_vector(token)
        norm = np.linalg.norm(total)
        return total / norm if norm > 0 else total

    def embed_many(self, token_lists: Iterable[Sequence[str]]) -> np.ndarray:
        """Stack embeddings of several token lists into a matrix."""
        rows = [self.embed(tokens) for tokens in token_lists]
        if not rows:
            return np.zeros((0, self.dim))
        return np.vstack(rows)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 when either is zero)."""
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    norms_a = np.linalg.norm(a, axis=1, keepdims=True)
    norms_b = np.linalg.norm(b, axis=1, keepdims=True)
    norms_a[norms_a == 0] = 1.0
    norms_b[norms_b == 0] = 1.0
    return (a / norms_a) @ (b / norms_b).T
