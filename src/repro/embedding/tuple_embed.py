"""Tuple embeddings (the paper's ``Emb_tab``).

The paper adapts sentence-BERT for tabular rows by "including column names
as tokens to capture both the meaning of the column as well as the value"
(§4.2). We mirror that: a row embeds from ``table``, ``column`` and
``column=value`` tokens; numeric values contribute a bucket token (so
near-equal numbers share tokens) and the raw value token.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from ..db.schema import ColumnType
from ..db.statistics import TableStats
from ..db.table import Table
from .query_embed import N_VALUE_BUCKETS
from .text import DEFAULT_DIM, TokenHasher


class TupleEmbedder:
    """Embeds rows of tables into the same hashed vector space."""

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        stats: Optional[Mapping[str, TableStats]] = None,
    ) -> None:
        self.hasher = TokenHasher(dim=dim)
        self.stats = dict(stats) if stats else {}

    @property
    def dim(self) -> int:
        return self.hasher.dim

    # -------------------------------------------------------------- #
    def row_tokens(self, table: Table, position: int) -> list[str]:
        """Tokens of one row: table, column names, and column=value pairs."""
        tokens = [f"table:{table.name}"]
        for column in table.schema.columns:
            value = table.column(column.name)[position]
            tokens.append(f"col:{table.name}.{column.name}")
            if column.ctype is ColumnType.STR:
                tokens.append(f"val:{table.name}.{column.name}={value}")
            else:
                tokens.append(f"val:{table.name}.{column.name}={value}")
                bucket = self._bucket(table.name, column.name, float(value))
                if bucket is not None:
                    tokens.append(f"bucket:{table.name}.{column.name}@{bucket}")
        return tokens

    def embed_row(self, table: Table, position: int) -> np.ndarray:
        return self.hasher.embed(self.row_tokens(table, position))

    def embed_table(self, table: Table, positions: Optional[Sequence[int]] = None) -> np.ndarray:
        """Embedding matrix for ``positions`` (default: all rows)."""
        if positions is None:
            positions = range(len(table))
        return self.hasher.embed_many(self.row_tokens(table, p) for p in positions)

    def embed_group(self, rows: Sequence[tuple[Table, int]]) -> np.ndarray:
        """Embedding of a *join group*: the normalized mean of its rows.

        Actions in ASQP-RL bundle one row per joined table; the group
        embedding is what the action-space vector representation
        (Alg. 1 line 4) stores per action.
        """
        if not rows:
            return np.zeros(self.dim)
        vectors = [self.embed_row(table, position) for table, position in rows]
        mean = np.mean(vectors, axis=0)
        norm = np.linalg.norm(mean)
        return mean / norm if norm > 0 else mean

    # -------------------------------------------------------------- #
    def _bucket(self, table_name: str, column: str, value: float) -> Optional[int]:
        table_stats = self.stats.get(table_name)
        if table_stats is None:
            return None
        numeric = table_stats.numeric.get(column)
        if numeric is None or numeric.value_range <= 0:
            return None
        fraction = (value - numeric.minimum) / numeric.value_range
        return int(np.clip(fraction * N_VALUE_BUCKETS, 0, N_VALUE_BUCKETS - 1))
