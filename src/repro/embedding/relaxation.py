"""Query relaxation (paper §4.2, "Query Pre-processing").

Relaxation *generalizes* a query before it is embedded and executed: it
loosens predicate conditions so the result set grows, pulling near-miss
tuples into the action space and guarding against overfitting to the known
workload (challenge C4). Three standard relaxation moves are applied:

1. **Range widening** — numeric comparisons and BETWEENs widen by a factor
   of the column's observed range.
2. **Equality generalization** — ``col = v`` on a categorical column becomes
   ``col IN (v, siblings...)`` with the most popular sibling values.
3. **Predicate dropping** — optionally drop the single most selective
   conjunct (the strongest condition) entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..db.expressions import (
    Between,
    Comparison,
    Expression,
    InSet,
    conjoin,
    conjuncts,
)
from ..db.query import AggregateQuery, SPJQuery
from ..db.statistics import TableStats


@dataclass
class RelaxationConfig:
    """Tuning knobs for query relaxation.

    Parameters
    ----------
    range_widen_fraction:
        Numeric bounds move outward by this fraction of the column range.
    equality_siblings:
        How many popular sibling values join a generalized equality.
    drop_most_selective:
        Whether to drop the conjunct estimated to be most selective.
    """

    range_widen_fraction: float = 0.10
    equality_siblings: int = 3
    drop_most_selective: bool = False


class QueryRelaxer:
    """Applies relaxation moves using per-table statistics."""

    def __init__(
        self,
        stats: Mapping[str, TableStats],
        config: Optional[RelaxationConfig] = None,
    ) -> None:
        self.stats = dict(stats)
        self.config = config or RelaxationConfig()

    # -------------------------------------------------------------- #
    def relax(self, query: Union[SPJQuery, AggregateQuery]) -> SPJQuery:
        """Relaxed SPJ form of ``query`` (aggregates are stripped first)."""
        spj = query.strip_aggregates() if query.is_aggregate else query
        parts = [self._relax_conjunct(part, spj) for part in conjuncts(spj.predicate)]
        if self.config.drop_most_selective and len(parts) > 1:
            drop_index = self._most_selective_index(parts, spj)
            parts = [part for i, part in enumerate(parts) if i != drop_index]
        relaxed = spj.with_predicate(conjoin(parts))
        # Relaxation is about enlarging result sets: lift LIMITs too.
        if relaxed.limit is not None:
            relaxed = relaxed.with_limit(None)
        return relaxed

    # -------------------------------------------------------------- #
    def _relax_conjunct(self, part: Expression, query: SPJQuery) -> Expression:
        if isinstance(part, Between):
            margin = self._margin(part.column, query)
            if margin is not None and isinstance(part.low, (int, float)):
                return Between(part.column, part.low - margin, part.high + margin)
            return part
        if isinstance(part, Comparison):
            return self._relax_comparison(part, query)
        return part

    def _relax_comparison(self, part: Comparison, query: SPJQuery) -> Expression:
        if part.op == "=" and isinstance(part.value, str):
            cat = self._categorical(part.column, query)
            if cat is not None and self.config.equality_siblings > 0:
                siblings = cat.top_values(self.config.equality_siblings + 1)
                values = {part.value, *siblings}
                if len(values) > 1:
                    return InSet(part.column, values)
            return part
        if isinstance(part.value, (int, float)):
            margin = self._margin(part.column, query)
            if margin is None:
                return part
            if part.op in (">", ">="):
                return Comparison(part.column, part.op, part.value - margin)
            if part.op in ("<", "<="):
                return Comparison(part.column, part.op, part.value + margin)
            if part.op == "=":
                return Between(part.column, part.value - margin, part.value + margin)
        return part

    def _most_selective_index(self, parts: list[Expression], query: SPJQuery) -> int:
        """Heuristic: equality > IN > range > everything else."""

        def selectivity_rank(part: Expression) -> int:
            if isinstance(part, Comparison) and part.op == "=":
                return 0
            if isinstance(part, InSet):
                return 1
            if isinstance(part, Between):
                return 2
            if isinstance(part, Comparison):
                return 3
            return 4

        ranked = sorted(range(len(parts)), key=lambda i: selectivity_rank(parts[i]))
        return ranked[0]

    # -------------------------------------------------------------- #
    def _split_ref(self, ref: str, query: SPJQuery) -> Optional[tuple[str, str]]:
        if "." in ref:
            table, column = ref.split(".", 1)
            return table, column
        if len(query.tables) == 1:
            return query.tables[0], ref
        return None

    def _margin(self, ref: str, query: SPJQuery) -> Optional[float]:
        split = self._split_ref(ref, query)
        if split is None:
            return None
        table, column = split
        table_stats = self.stats.get(table)
        if table_stats is None:
            return None
        numeric = table_stats.numeric.get(column)
        if numeric is None or numeric.value_range <= 0:
            return None
        return numeric.value_range * self.config.range_widen_fraction

    def _categorical(self, ref: str, query: SPJQuery):
        split = self._split_ref(ref, query)
        if split is None:
            return None
        table, column = split
        table_stats = self.stats.get(table)
        if table_stats is None:
            return None
        return table_stats.categorical.get(column)
