"""Vector representations of queries and tuples, relaxation, clustering.

The paper uses two modified sentence-BERT models (one for SQL, one for
tabular rows); here both are deterministic feature-hashed embedders with
the same geometric contract — see DESIGN.md §2 for the substitution notes.
"""

from .cluster import ClusterResult, kmeans, kmedoids, select_representatives
from .query_embed import QueryEmbedder
from .relaxation import QueryRelaxer, RelaxationConfig
from .text import (
    DEFAULT_DIM,
    TokenHasher,
    cosine_similarity,
    cosine_similarity_matrix,
)
from .tuple_embed import TupleEmbedder

__all__ = [
    "ClusterResult",
    "DEFAULT_DIM",
    "QueryEmbedder",
    "QueryRelaxer",
    "RelaxationConfig",
    "TokenHasher",
    "TupleEmbedder",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "kmeans",
    "kmedoids",
    "select_representatives",
]
