"""Query embeddings (the paper's ``Emb_sql``).

A query embeds from its structural tokens: tables, join edges, predicate
columns/operators, constants, and projections (see ``SPJQuery.tokens``).
Numeric constants are additionally *bucketized* against the column's value
range so that two range queries over nearby intervals share bucket tokens
and land close together — the behaviour the estimator and representative
selection need.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..db.expressions import Between, Comparison, InSet, conjuncts
from ..db.query import AggregateQuery, SPJQuery
from ..db.statistics import TableStats
from .text import DEFAULT_DIM, TokenHasher

#: Number of buckets numeric constants are quantized into per column.
N_VALUE_BUCKETS = 16


class QueryEmbedder:
    """Embeds SPJ / aggregate queries into a shared vector space.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    stats:
        Optional per-table statistics; when provided, numeric predicate
        constants produce range-bucket tokens, making embeddings smooth in
        the constants (not just the query shape).
    """

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        stats: Optional[Mapping[str, TableStats]] = None,
    ) -> None:
        self.hasher = TokenHasher(dim=dim)
        self.stats = dict(stats) if stats else {}

    @property
    def dim(self) -> int:
        return self.hasher.dim

    # -------------------------------------------------------------- #
    def tokens(self, query: Union[SPJQuery, AggregateQuery]) -> list[str]:
        """Structural tokens plus value-bucket tokens for numeric constants."""
        tokens = list(query.tokens())
        spj = query.strip_aggregates() if query.is_aggregate else query
        tokens.extend(self._bucket_tokens(spj))
        return tokens

    def embed(self, query: Union[SPJQuery, AggregateQuery]) -> np.ndarray:
        return self.hasher.embed(self.tokens(query))

    def embed_workload(
        self, queries: Sequence[Union[SPJQuery, AggregateQuery]]
    ) -> np.ndarray:
        return self.hasher.embed_many(self.tokens(q) for q in queries)

    # -------------------------------------------------------------- #
    def _bucket_tokens(self, query: SPJQuery) -> list[str]:
        tokens: list[str] = []
        for part in conjuncts(query.predicate):
            if isinstance(part, Comparison) and isinstance(part.value, (int, float)):
                bucket = self._bucket(part.column, float(part.value), query)
                if bucket is not None:
                    tokens.append(f"bucket:{part.column}@{bucket}")
            elif isinstance(part, Between):
                for value in (part.low, part.high):
                    if isinstance(value, (int, float)):
                        bucket = self._bucket(part.column, float(value), query)
                        if bucket is not None:
                            tokens.append(f"bucket:{part.column}@{bucket}")
            elif isinstance(part, InSet):
                for value in part.values:
                    if isinstance(value, (int, float)):
                        bucket = self._bucket(part.column, float(value), query)
                        if bucket is not None:
                            tokens.append(f"bucket:{part.column}@{bucket}")
        return tokens

    def _bucket(self, ref: str, value: float, query: SPJQuery) -> Optional[int]:
        if "." in ref:
            table_name, column = ref.split(".", 1)
        elif len(query.tables) == 1:
            table_name, column = query.tables[0], ref
        else:
            return None
        table_stats = self.stats.get(table_name)
        if table_stats is None:
            return None
        numeric = table_stats.numeric.get(column)
        if numeric is None or numeric.value_range <= 0:
            return None
        fraction = (value - numeric.minimum) / numeric.value_range
        return int(np.clip(fraction * N_VALUE_BUCKETS, 0, N_VALUE_BUCKETS - 1))
