"""Clustering over embeddings: k-means, k-medoids, representative selection.

Used for (a) choosing *query representatives* from the embedded, relaxed
workload (paper Alg. 1 line 2), (b) the QRD baseline (cluster medoids as
diverse representatives), and (c) splitting a workload into interest
clusters for the drift experiment (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClusterResult:
    """Outcome of a clustering run."""

    labels: np.ndarray          # cluster index per point
    centers: np.ndarray         # (k, dim) centroids
    medoids: np.ndarray         # index of the point closest to each centroid
    inertia: float              # sum of squared distances to assigned centroid

    @property
    def k(self) -> int:
        return len(self.centers)

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_iter: int = 50,
    n_restarts: int = 3,
) -> ClusterResult:
    """Lloyd's k-means with k-means++ seeding and restarts.

    ``k`` is clipped to the number of points. Empty clusters are reseeded
    to the farthest point from its centroid.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = max(1, min(k, n))

    best: ClusterResult | None = None
    for _ in range(n_restarts):
        centers = _kmeanspp_init(points, k, rng)
        labels = np.full(n, -1, dtype=np.int64)
        for _iteration in range(n_iter):
            distances = _sq_distances(points, centers)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for c in range(k):
                members = points[labels == c]
                if len(members) > 0:
                    centers[c] = members.mean(axis=0)
                else:
                    worst = int(np.argmax(np.min(distances, axis=1)))
                    centers[c] = points[worst]
        distances = _sq_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(np.min(distances, axis=1)))
        medoids = _medoids_of(points, centers, labels, k)
        candidate = ClusterResult(labels=labels, centers=centers, medoids=medoids, inertia=inertia)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = len(points)
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = points[first]
    closest = np.sum((points - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            centers[c] = points[int(rng.integers(0, n))]
        else:
            probabilities = closest / total
            pick = int(rng.choice(n, p=probabilities))
            centers[c] = points[pick]
        closest = np.minimum(closest, np.sum((points - centers[c]) ** 2, axis=1))
    return centers


def _sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    return (
        np.sum(points ** 2, axis=1, keepdims=True)
        - 2.0 * points @ centers.T
        + np.sum(centers ** 2, axis=1)
    )


def _medoids_of(
    points: np.ndarray, centers: np.ndarray, labels: np.ndarray, k: int
) -> np.ndarray:
    medoids = np.zeros(k, dtype=np.int64)
    distances = _sq_distances(points, centers)
    for c in range(k):
        members = np.flatnonzero(labels == c)
        if len(members) == 0:
            medoids[c] = int(np.argmin(distances[:, c]))
        else:
            medoids[c] = members[int(np.argmin(distances[members, c]))]
    return medoids


def kmedoids(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_iter: int = 30,
) -> ClusterResult:
    """PAM-style k-medoids (the QRD baseline of [24]: pick medoids, re-assign)."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = max(1, min(k, n))

    medoid_idx = rng.choice(n, size=k, replace=False)
    for _ in range(n_iter):
        distances = _sq_distances(points, points[medoid_idx])
        labels = np.argmin(distances, axis=1)
        new_medoids = medoid_idx.copy()
        for c in range(k):
            members = np.flatnonzero(labels == c)
            if len(members) == 0:
                continue
            within = _sq_distances(points[members], points[members])
            new_medoids[c] = members[int(np.argmin(within.sum(axis=1)))]
        if np.array_equal(new_medoids, medoid_idx):
            break
        medoid_idx = new_medoids

    distances = _sq_distances(points, points[medoid_idx])
    labels = np.argmin(distances, axis=1)
    inertia = float(np.sum(np.min(distances, axis=1)))
    return ClusterResult(
        labels=labels,
        centers=points[medoid_idx].copy(),
        medoids=np.asarray(medoid_idx, dtype=np.int64),
        inertia=inertia,
    )


def select_representatives(
    points: np.ndarray,
    n_representatives: int,
    rng: np.random.Generator,
) -> list[int]:
    """Indices of ``n_representatives`` diverse points (cluster medoids).

    This is the paper's ``rep_selection`` (Alg. 1 line 2): cluster the
    embedded generalized queries and keep one representative per cluster.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if len(points) == 0:
        return []
    if n_representatives >= len(points):
        return list(range(len(points)))
    result = kmeans(points, n_representatives, rng)
    return sorted(set(int(m) for m in result.medoids))
