"""Workload generation for the no-workload scenario (paper §4.5, Fig. 6).

"Our system utilizes statistical information collected from the tables,
such as the mean and standard deviation of numerical columns, a sampled
set of categorical columns (with repetition to account for popularity of
certain values), and standard query templates, to generate query
workloads."

Three standard templates, filled from statistics:

1. single-table numeric range around a sampled center (mean ± z·std);
2. single-table categorical equality / IN over popularity-sampled values;
3. foreign-key join between two tables with one predicate on each side.

``refine_with_user_queries`` biases subsequent generation toward the
tables/columns the user's own queries touch — the iterative alignment loop
of §4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..db.database import Database
from ..db.expressions import Between, Comparison, Expression, InSet, conjoin, conjuncts
from ..db.query import AggregateQuery, JoinCondition, SPJQuery
from ..db.statistics import TableStats, compute_database_stats
from ..datasets.workloads import Workload

QueryLike = Union[SPJQuery, AggregateQuery]


@dataclass
class WorkloadGenerator:
    """Generates SPJ workloads from table statistics and templates."""

    db: Database
    rng: np.random.Generator
    stats: dict[str, TableStats] = field(default_factory=dict)
    # Preference weights over (table, column) targets, raised by refinement.
    _column_bias: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stats:
            self.stats = compute_database_stats(self.db)

    # -------------------------------------------------------------- #
    def generate(self, n_queries: int, name_prefix: str = "gen") -> Workload:
        """Generate ``n_queries`` SPJ queries across the three templates."""
        queries: list[QueryLike] = []
        for i in range(n_queries):
            template = int(self.rng.integers(0, 3))
            if template == 2 and self._join_edges():
                query = self._join_template()
            elif template == 1 and self._categorical_targets():
                query = self._categorical_template()
            else:
                query = self._numeric_template()
            if query is not None:
                queries.append(
                    SPJQuery(
                        tables=query.tables,
                        predicate=query.predicate,
                        joins=query.joins,
                        projection=query.projection,
                        name=f"{name_prefix}_q{i:03d}",
                    )
                )
        if not queries:
            raise ValueError("could not generate any queries from the statistics")
        return Workload(queries, name=name_prefix)

    # -------------------------------------------------------------- #
    def refine_with_user_queries(self, user_queries: Sequence[QueryLike]) -> None:
        """Bias future generation toward what the user actually asks."""
        for query in user_queries:
            spj = query.strip_aggregates() if query.is_aggregate else query
            for part in conjuncts(spj.predicate):
                for ref in part.columns():
                    if "." in ref:
                        table, column = ref.split(".", 1)
                    elif len(spj.tables) == 1:
                        table, column = spj.tables[0], ref
                    else:
                        continue
                    key = (table, column)
                    self._column_bias[key] = self._column_bias.get(key, 1.0) + 2.0

    # -------------------------------------------------------------- #
    def _weighted_pick(self, targets: list[tuple[str, str]]) -> tuple[str, str]:
        weights = np.asarray(
            [self._column_bias.get(t, 1.0) for t in targets], dtype=np.float64
        )
        weights /= weights.sum()
        index = int(self.rng.choice(len(targets), p=weights))
        return targets[index]

    def _numeric_targets(self) -> list[tuple[str, str]]:
        targets = []
        for table_name, table_stats in self.stats.items():
            for column, numeric in table_stats.numeric.items():
                if numeric.value_range > 0:
                    targets.append((table_name, column))
        return targets

    def _categorical_targets(self) -> list[tuple[str, str]]:
        targets = []
        for table_name, table_stats in self.stats.items():
            for column, cat in table_stats.categorical.items():
                if 1 < cat.n_distinct <= 200:
                    targets.append((table_name, column))
        return targets

    def _join_edges(self) -> list[tuple[str, str, str, str]]:
        edges = []
        for table in self.db:
            for fk in table.schema.foreign_keys:
                if self.db.has_table(fk.ref_table):
                    edges.append((table.name, fk.column, fk.ref_table, fk.ref_column))
        return edges

    # -------------------------------------------------------------- #
    def _numeric_predicate(self, table: str, column: str) -> Expression:
        numeric = self.stats[table].numeric[column]
        center = float(self.rng.normal(numeric.mean, max(numeric.std, 1e-9)))
        center = float(np.clip(center, numeric.minimum, numeric.maximum))
        half_width = max(numeric.std, numeric.value_range * 0.05) * float(
            self.rng.uniform(0.3, 1.5)
        )
        low, high = center - half_width, center + half_width
        is_integral = float(numeric.minimum).is_integer() and float(
            numeric.maximum
        ).is_integer()
        if is_integral:
            return Between(f"{table}.{column}", int(low), int(np.ceil(high)))
        return Between(f"{table}.{column}", round(low, 2), round(high, 2))

    def _categorical_predicate(self, table: str, column: str) -> Expression:
        cat = self.stats[table].categorical[column]
        n_values = int(self.rng.integers(1, 4))
        values = set(cat.sample_weighted(self.rng, n_values))
        if len(values) == 1:
            return Comparison(f"{table}.{column}", "=", next(iter(values)))
        return InSet(f"{table}.{column}", values)

    def _numeric_template(self) -> Optional[SPJQuery]:
        targets = self._numeric_targets()
        if not targets:
            return None
        table, column = self._weighted_pick(targets)
        predicates = [self._numeric_predicate(table, column)]
        # Half the time add a second predicate on the same table.
        same_table = [t for t in targets if t[0] == table and t[1] != column]
        if same_table and self.rng.random() < 0.5:
            _, other = same_table[int(self.rng.integers(0, len(same_table)))]
            predicates.append(self._numeric_predicate(table, other))
        return SPJQuery(tables=(table,), predicate=conjoin(predicates))

    def _categorical_template(self) -> Optional[SPJQuery]:
        targets = self._categorical_targets()
        if not targets:
            return None
        table, column = self._weighted_pick(targets)
        predicates = [self._categorical_predicate(table, column)]
        numeric_here = [t for t in self._numeric_targets() if t[0] == table]
        if numeric_here and self.rng.random() < 0.6:
            _, other = numeric_here[int(self.rng.integers(0, len(numeric_here)))]
            predicates.append(self._numeric_predicate(table, other))
        return SPJQuery(tables=(table,), predicate=conjoin(predicates))

    def _join_template(self) -> Optional[SPJQuery]:
        edges = self._join_edges()
        if not edges:
            return None
        table, column, ref_table, ref_column = edges[
            int(self.rng.integers(0, len(edges)))
        ]
        join = JoinCondition(f"{table}.{column}", f"{ref_table}.{ref_column}")
        predicates: list[Expression] = []
        for side in (table, ref_table):
            numeric_here = [t for t in self._numeric_targets() if t[0] == side]
            categorical_here = [t for t in self._categorical_targets() if t[0] == side]
            if numeric_here and (not categorical_here or self.rng.random() < 0.5):
                _, col = numeric_here[int(self.rng.integers(0, len(numeric_here)))]
                predicates.append(self._numeric_predicate(side, col))
            elif categorical_here:
                _, col = categorical_here[
                    int(self.rng.integers(0, len(categorical_here)))
                ]
                predicates.append(self._categorical_predicate(side, col))
        if not predicates:
            return None
        return SPJQuery(
            tables=(table, ref_table),
            joins=(join,),
            predicate=conjoin(predicates),
        )


def generate_workload(
    db: Database,
    n_queries: int,
    rng: Optional[np.random.Generator] = None,
    name_prefix: str = "gen",
) -> Workload:
    """Convenience wrapper: one-shot workload generation from statistics."""
    generator = WorkloadGenerator(db, rng or np.random.default_rng(0))
    return generator.generate(n_queries, name_prefix=name_prefix)
