"""Answerability estimation (paper §4.4, evaluated in Fig. 5).

Given a user query, estimate whether the approximation set is likely to
contain relevant tuples. The estimate combines:

* **familiarity** — the maximum cosine similarity between the query's
  embedding and the training-representative embeddings ("the query's
  closeness to the training workload"), and
* **competence** — the model's observed Eq. 1 scores on the nearest
  representatives ("the existing model's performance on the training
  workload"), similarity-weighted.

The product, squashed to [0, 1], is the confidence that the query is
answerable from the approximation set; ≥ threshold (default 0.5) predicts
"answerable". ``deviation_confidence`` (1 − familiarity) drives interest-
drift detection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..db.query import AggregateQuery, SPJQuery
from ..embedding.query_embed import QueryEmbedder

#: Softmax sharpness when weighting nearby representatives.
_SIMILARITY_TEMPERATURE = 0.1

#: Rolling window of live (confidence, realized) pairs kept for the
#: online calibration error (one float per served query, bounded).
_OUTCOME_WINDOW = 256


@dataclass
class AnswerabilityEstimate:
    """Outcome of one estimation."""

    confidence: float       # in [0, 1]
    familiarity: float      # normalized closeness to the training workload
    competence: float       # similarity-weighted training score
    answerable: bool


class AnswerabilityEstimator:
    """Predicts per-query answerability from the approximation set."""

    def __init__(
        self,
        embedder: QueryEmbedder,
        representative_embeddings: np.ndarray,
        training_scores: Sequence[float],
        threshold: float = 0.5,
        calibration_embeddings: Optional[np.ndarray] = None,
    ) -> None:
        embeddings = np.atleast_2d(np.asarray(representative_embeddings))
        scores = np.asarray(training_scores, dtype=np.float64)
        if len(embeddings) != len(scores):
            raise ValueError(
                f"{len(embeddings)} representative embeddings for "
                f"{len(scores)} training scores"
            )
        if len(scores) == 0:
            raise ValueError("estimator needs at least one training representative")
        self.embedder = embedder
        self.embeddings = embeddings
        self.scores = scores
        self.threshold = threshold
        self.calibration_embeddings = (
            np.atleast_2d(np.asarray(calibration_embeddings))
            if calibration_embeddings is not None and len(calibration_embeddings)
            else None
        )
        self._outcome_errors: deque[float] = deque(maxlen=_OUTCOME_WINDOW)
        self._calibrate()

    def _calibrate(self) -> None:
        """Fit the familiarity normalization to the training workload.

        Raw cosine similarities between hashed query embeddings live well
        inside (0, 1); we map them to a [0, 1] familiarity scale using how
        close the *training queries* sit to the representatives: a query as
        close to the representatives as a typical training query is fully
        familiar. Without calibration queries we fall back to the
        representatives' own leave-one-out similarities.
        """
        if self.calibration_embeddings is not None and len(self.calibration_embeddings) >= 2:
            sims = self.calibration_embeddings @ self.embeddings.T
            nearest = np.max(sims, axis=1)
            # Training queries that *are* representatives score 1.0; drop
            # them from the reference so the scale reflects typical queries.
            informative = nearest[nearest < 0.999]
            if len(informative) >= 2:
                nearest = informative
        elif len(self.embeddings) >= 2:
            sims = self.embeddings @ self.embeddings.T
            np.fill_diagonal(sims, -np.inf)
            nearest = np.max(sims, axis=1)
        else:
            self._sim_low, self._sim_high = 0.25, 0.75
            return
        low = max(0.0, float(np.percentile(nearest, 10)) * 0.5)
        high = float(np.percentile(nearest, 50))
        if high - low < 0.05:
            low = max(0.0, high - 0.3)
        self._sim_low, self._sim_high = low, max(high, low + 0.05)

    def _normalized_familiarity(self, max_similarity: float) -> float:
        span = self._sim_high - self._sim_low
        return float(np.clip((max_similarity - self._sim_low) / span, 0.0, 1.0))

    # -------------------------------------------------------------- #
    def update(self, new_embeddings: np.ndarray, new_scores: Sequence[float]) -> None:
        """Extend with fine-tuned representatives (after drift)."""
        new_embeddings = np.atleast_2d(np.asarray(new_embeddings))
        new_scores = np.asarray(new_scores, dtype=np.float64)
        if len(new_embeddings) != len(new_scores):
            raise ValueError("embeddings/scores length mismatch")
        self.embeddings = np.vstack([self.embeddings, new_embeddings])
        self.scores = np.concatenate([self.scores, new_scores])
        self._calibrate()

    # -------------------------------------------------------------- #
    def estimate(self, query: Union[SPJQuery, AggregateQuery]) -> AnswerabilityEstimate:
        vector = self.embedder.embed(query)
        similarities = self.embeddings @ vector  # embeddings are unit norm
        similarities = np.clip(similarities, -1.0, 1.0)
        familiarity = self._normalized_familiarity(float(np.max(similarities)))

        # Similarity-weighted training score (softmax over similarities).
        logits = similarities / _SIMILARITY_TEMPERATURE
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        competence = float(np.dot(weights, self.scores))

        confidence = float(np.clip(familiarity * competence, 0.0, 1.0))
        return AnswerabilityEstimate(
            confidence=confidence,
            familiarity=familiarity,
            competence=competence,
            answerable=confidence >= self.threshold,
        )

    def note_outcome(self, confidence: float, realized: float) -> None:
        """Record one live (predicted, realized) pair from a served query.

        The session feeds every answered query here; unlike the static
        leave-one-out :meth:`calibration_error`, the resulting
        :meth:`online_calibration_error` tracks calibration against the
        queries the user is *actually* asking, so it moves when the
        workload drifts away from the training distribution.
        """
        error = abs(float(confidence) - float(realized))
        if np.isfinite(error):
            self._outcome_errors.append(error)

    def online_calibration_error(self) -> float:
        """Mean |confidence − realized| over the recent served queries."""
        if not self._outcome_errors:
            return 0.0
        return float(sum(self._outcome_errors) / len(self._outcome_errors))

    def deviation_confidence(self, query: Union[SPJQuery, AggregateQuery]) -> float:
        """How confidently the query deviates from the training workload."""
        estimate = self.estimate(query)
        return float(np.clip(1.0 - estimate.familiarity, 0.0, 1.0))

    def calibration_error(self) -> float:
        """Self-assessed calibration: mean |confidence − training score|.

        Leave-one-out over the representatives: predict each one's
        answerability from the *other* representatives and compare with
        the Eq. 1 score the model actually achieved on it. Near 0 means
        the confidence scale tracks realized quality; the health monitor
        and ``repro report`` surface it as an estimator-quality gauge.
        """
        n = len(self.embeddings)
        if n < 2:
            return 0.0
        sims = self.embeddings @ self.embeddings.T
        np.fill_diagonal(sims, -np.inf)
        errors = np.empty(n)
        for i in range(n):
            row = sims[i]
            familiarity = self._normalized_familiarity(
                float(np.clip(np.max(row), -1.0, 1.0))
            )
            logits = row / _SIMILARITY_TEMPERATURE
            logits = logits - np.max(logits)
            weights = np.exp(logits)   # self weight is exp(-inf) = 0
            weights /= weights.sum()
            competence = float(np.dot(weights, self.scores))
            confidence = float(np.clip(familiarity * competence, 0.0, 1.0))
            errors[i] = abs(confidence - self.scores[i])
        return float(np.mean(errors))
