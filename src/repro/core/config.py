"""ASQP-RL configuration.

Defaults follow the paper's §6.1 hyper-parameter section: k=1000, F=50,
learning rate 5e-5, KL coefficient 0.2, entropy coefficient 0.001, actor =
input layer + 2 fully-connected layers + softmax. The paper's 32 parallel
actor-learners scale down to 8 logical actors by default (configurable) —
see DESIGN.md §2 on the Ray substitution.

``light()`` is ASQP-Light (§4.5): 25% of the training queries, a much
higher learning rate, and an earlier stopping threshold — about half the
setup time for ~10% quality loss. ``adaptive()`` implements the Adaptive
Configuration knob: interpolates between light and full settings given a
time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence


@dataclass
class ASQPConfig:
    """All knobs of the ASQP-RL system."""

    # Problem parameters (paper §3).
    memory_budget: int = 1000          # k: max tuples in the approximation set
    frame_size: int = 50               # F: rows a user can cognitively process

    # Pre-processing (paper §4.2).
    n_query_representatives: Optional[int] = None  # |Q̂|; None = all (paper default)
    training_fraction: float = 1.0     # fraction of training queries executed
    action_space_target: int = 600     # subsampled action-space size (groups)
    group_size: int = 4                # result rows bundled per action
    exact_row_share: float = 0.7       # subsample budget share for exact result rows
    relax_range_fraction: float = 0.10
    relax_equality_siblings: int = 3
    embedding_dim: int = 64

    # RL (paper §5 / §6.1).
    learning_rate: float = 5e-5
    kl_coef: float = 0.2
    entropy_coef: float = 0.001
    clip_epsilon: float = 0.2
    gamma: float = 0.99
    gae_lambda: float = 0.95
    n_actors: int = 8                  # paper: 32 async actor-critics
    episodes_per_actor: int = 2
    n_iterations: int = 40             # outer PPO iterations
    update_epochs: int = 4
    minibatch_size: int = 64
    query_batch_size: int = 8          # queries per reward batch (Alg. 1 line 6)
    hidden_sizes: Sequence[int] = (128, 64)
    early_stopping_patience: int = 8
    early_stopping_min_delta: float = 1e-3

    # Ablation switches (paper Fig. 3).
    environment: str = "gsl"           # "gsl" | "drp" | "drp+gsl"
    gsl_delta_rewards: bool = True     # telescoped GSL reward (same optimum)
    diversity_coef: float = 0.0        # §5.1 diversity regularizer (paper: off)
    use_ppo_clip: bool = True          # False => "-ppo" variant
    use_actor_critic: bool = True      # False => "-ppo -ac" (REINFORCE)
    drp_horizon: int = 200             # scaled-down DRP horizon

    # Inference / estimator / drift (paper §4.4).
    n_candidate_rollouts: int = 8      # sampled rollouts competing with greedy
    answerable_threshold: float = 0.5
    drift_confidence: float = 0.8
    drift_trigger_count: int = 3
    fine_tune_iterations: int = 10

    seed: int = 0

    def __post_init__(self) -> None:
        if self.memory_budget < 1:
            raise ValueError(f"memory budget k must be >= 1, got {self.memory_budget}")
        if self.frame_size < 1:
            raise ValueError(f"frame size F must be >= 1, got {self.frame_size}")
        if not 0 < self.training_fraction <= 1:
            raise ValueError(
                f"training fraction must be in (0, 1], got {self.training_fraction}"
            )
        if self.environment not in ("gsl", "drp", "drp+gsl"):
            raise ValueError(
                f"environment must be gsl, drp or drp+gsl, got {self.environment!r}"
            )
        if not self.use_ppo_clip:
            # The KL penalty is part of the proximal update; the -ppo
            # ablation removes both (paper §5.1).
            self.kl_coef = 0.0
        if self.group_size < 1:
            raise ValueError(f"group size must be >= 1, got {self.group_size}")

    # ---------------------------------------------------------------- #
    @classmethod
    def light(cls, **overrides) -> "ASQPConfig":
        """ASQP-Light (§4.5): ~½ the setup time, ~10% quality loss."""
        settings = dict(
            training_fraction=0.25,
            learning_rate=0.1,
            n_iterations=15,
            early_stopping_patience=3,
            n_query_representatives=12,
            episodes_per_actor=1,
        )
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def adaptive(cls, time_budget_fraction: float, **overrides) -> "ASQPConfig":
        """Adaptive Configuration (§4.5): interpolate light ↔ full.

        ``time_budget_fraction`` in [0, 1]: 0 = lightest, 1 = full quality.
        """
        f = float(min(1.0, max(0.0, time_budget_fraction)))
        settings = dict(
            training_fraction=0.25 + 0.75 * f,
            learning_rate=10 ** (-1 - 3.3 * f),   # 1e-1 .. ~5e-5
            n_iterations=int(round(15 + 25 * f)),
            early_stopping_patience=int(round(3 + 5 * f)),
            n_query_representatives=int(round(12 + 12 * f)),
            episodes_per_actor=1 if f < 0.5 else 2,
        )
        settings.update(overrides)
        return cls(**settings)

    def with_overrides(self, **overrides) -> "ASQPConfig":
        return replace(self, **overrides)

    @property
    def variant_label(self) -> str:
        """Label used in the Fig. 3 ablation tables."""
        label = "ASQP-RL"
        if not self.use_ppo_clip:
            label += " -ppo"
        if not self.use_actor_critic:
            label += " -ac"
        return label
