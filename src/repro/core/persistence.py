"""Save / load trained ASQP-RL models.

The offline training phase is the expensive part of the system (the paper
budgets an hour for it), so a trained model must outlive the process. A
model directory contains:

* ``config.json`` — the :class:`~repro.core.config.ASQPConfig` fields;
* ``queries.json`` — representatives and training queries as SQL text
  (round-tripped through :func:`repro.db.sql.sql`) plus weights;
* ``actions.json`` — the action space's tuple keys and source codes;
* ``arrays.npz`` — network weights, action/representative/training
  embeddings;
* ``history.json`` — training diagnostics and metadata.

Coverage structures are *rebuilt* on load by re-executing the
representatives against the database (exactly what preprocessing did), so
the on-disk format stays small and the loaded model is guaranteed
consistent with the database it is attached to. No pickle anywhere.
"""

from __future__ import annotations

import dataclasses
import json
import os
import numpy as np

from ..db.database import Database
from ..db.sql import sql
from ..db.statistics import compute_database_stats
from ..embedding.query_embed import QueryEmbedder
from ..embedding.tuple_embed import TupleEmbedder
from .action_space import Action, ActionSpace
from .agent import ASQPAgent
from .config import ASQPConfig
from .preprocess import PreprocessResult, build_coverage
from .trainer import IterationRecord, TrainedModel

FORMAT_VERSION = 1


def save_model(model: TrainedModel, directory: str) -> None:
    """Persist a trained model to ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    config_dict = dataclasses.asdict(model.config)
    config_dict["hidden_sizes"] = list(config_dict["hidden_sizes"])
    with open(os.path.join(directory, "config.json"), "w") as handle:
        json.dump({"version": FORMAT_VERSION, "config": config_dict}, handle, indent=2)

    prep = model.preprocessed
    queries = {
        "representatives": [q.to_sql() for q in prep.representatives],
        "representative_weights": [
            float(c.weight) for c in model.coverages
        ],
        "training_queries": [q.to_sql() for q in prep.training_queries],
    }
    with open(os.path.join(directory, "queries.json"), "w") as handle:
        json.dump(queries, handle, indent=2)

    actions = [
        {"keys": [[t, int(r)] for t, r in action.keys], "source": action.source_query}
        for action in model.action_space
    ]
    with open(os.path.join(directory, "actions.json"), "w") as handle:
        json.dump(actions, handle)

    arrays: dict[str, np.ndarray] = {
        "action_embeddings": model.action_space.embeddings,
        "representative_embeddings": prep.representative_embeddings,
        "training_embeddings": prep.training_embeddings,
    }
    for i, weight in enumerate(model.agent.actor.net.weights):
        arrays[f"actor_w{i}"] = weight
    for i, bias in enumerate(model.agent.actor.net.biases):
        arrays[f"actor_b{i}"] = bias
    if model.agent.critic is not None:
        for i, weight in enumerate(model.agent.critic.net.weights):
            arrays[f"critic_w{i}"] = weight
        for i, bias in enumerate(model.agent.critic.net.biases):
            arrays[f"critic_b{i}"] = bias
    np.savez_compressed(os.path.join(directory, "arrays.npz"), **arrays)

    history = {
        "records": [dataclasses.asdict(record) for record in model.history],
        "setup_seconds": model.setup_seconds,
        "fine_tune_count": model.fine_tune_count,
    }
    with open(os.path.join(directory, "history.json"), "w") as handle:
        json.dump(history, handle, indent=2)


def load_model(directory: str, db: Database) -> TrainedModel:
    """Load a model saved by :func:`save_model`, attached to ``db``.

    ``db`` must be the database the model was trained on (same content);
    coverage structures are rebuilt by executing the stored representative
    queries against it.
    """
    with open(os.path.join(directory, "config.json")) as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {payload.get('version')!r}"
        )
    config_dict = payload["config"]
    config_dict["hidden_sizes"] = tuple(config_dict["hidden_sizes"])
    config = ASQPConfig(**config_dict)

    with open(os.path.join(directory, "queries.json")) as handle:
        queries = json.load(handle)
    representatives = [sql(text) for text in queries["representatives"]]
    training_queries = [sql(text) for text in queries["training_queries"]]
    weights = np.asarray(queries["representative_weights"], dtype=np.float64)

    with open(os.path.join(directory, "actions.json")) as handle:
        raw_actions = json.load(handle)
    actions = [
        Action(
            keys=tuple((t, int(r)) for t, r in entry["keys"]),
            source_query=int(entry["source"]),
        )
        for entry in raw_actions
    ]

    arrays = np.load(os.path.join(directory, "arrays.npz"))
    action_space = ActionSpace(actions, arrays["action_embeddings"])

    agent = ASQPAgent(len(action_space), config)
    for i in range(len(agent.actor.net.weights)):
        agent.actor.net.weights[i][...] = arrays[f"actor_w{i}"]
        agent.actor.net.biases[i][...] = arrays[f"actor_b{i}"]
    if agent.critic is not None and "critic_w0" in arrays:
        for i in range(len(agent.critic.net.weights)):
            agent.critic.net.weights[i][...] = arrays[f"critic_w{i}"]
            agent.critic.net.biases[i][...] = arrays[f"critic_b{i}"]

    # Rebuild the reward structures against the attached database.
    rng = np.random.default_rng(config.seed)
    coverages = [
        build_coverage(db, query, float(weights[i]), config.frame_size, rng)
        for i, query in enumerate(representatives)
    ]

    stats = compute_database_stats(db)
    prep = PreprocessResult(
        representatives=representatives,
        relaxed_representatives=[],
        representative_weights=weights,
        representative_embeddings=arrays["representative_embeddings"],
        training_embeddings=arrays["training_embeddings"],
        coverages=list(coverages),
        action_space=action_space,
        training_queries=training_queries,
        query_embedder=QueryEmbedder(dim=config.embedding_dim, stats=stats),
        tuple_embedder=TupleEmbedder(dim=config.embedding_dim, stats=stats),
        stats=stats,
    )

    with open(os.path.join(directory, "history.json")) as handle:
        history = json.load(handle)

    model = TrainedModel(
        db=db,
        config=config,
        agent=agent,
        preprocessed=prep,
        coverages=list(coverages),
        action_space=action_space,
        history=[IterationRecord(**record) for record in history["records"]],
        setup_seconds=history["setup_seconds"],
        fine_tune_count=history["fine_tune_count"],
    )
    return model
