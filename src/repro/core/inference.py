"""Inference: generating the approximation set (paper Alg. 2).

Tuple selection is sequential: while the set is below the requested size,
sample the next action from the trained policy (with masking), append its
tuples, and stop at the budget. A deterministic greedy mode takes the
arg-max action instead, which is what the benchmarks use for
reproducibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rl.policy import ActorNetwork
from .action_space import ActionSpace
from .approximation import ApproximationSet
from .config import ASQPConfig


def generate_approximation_set(
    actor: ActorNetwork,
    action_space: ActionSpace,
    config: ASQPConfig,
    requested_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    greedy: bool = True,
) -> ApproximationSet:
    """Roll the trained policy out into an approximation set (Alg. 2).

    Parameters
    ----------
    requested_size:
        The ``req_size`` of Alg. 2; defaults to the memory budget ``k``.
    greedy:
        Take the arg-max valid action (deterministic); otherwise sample
        from the policy distribution.
    """
    if len(action_space) != actor.n_actions:
        raise ValueError(
            f"action space size {len(action_space)} does not match the "
            f"actor's {actor.n_actions} actions"
        )
    budget = requested_size if requested_size is not None else config.memory_budget
    if budget < 1:
        raise ValueError(f"requested size must be >= 1, got {budget}")
    rng = rng or np.random.default_rng(config.seed)

    selected = np.zeros(actor.n_actions, dtype=bool)
    approx = ApproximationSet()
    while approx.total_size() < budget:
        mask = ~selected
        if not mask.any():
            break
        state = selected.astype(np.float64)
        if greedy:
            action = actor.greedy(state, mask)
        else:
            action = actor.sample(state, mask, rng).action
        selected[action] = True
        keys = list(action_space.keys_of(action))
        remaining = budget - approx.total_size()
        new_keys = [key for key in keys if key not in approx]
        if len(new_keys) > remaining:
            # Trim the final group so Σ|S_i| never exceeds the budget.
            new_keys = new_keys[:remaining]
        approx.add_keys(new_keys)
    return approx
