"""Training (paper Alg. 1) and the trained-model handle.

:class:`ASQPTrainer` runs pre-processing, builds the configured
environment and agent, and iterates collect → PPO-update with early
stopping on the mean episode reward. The returned :class:`TrainedModel`
generates approximation sets (Alg. 2) and supports drift fine-tuning
(§4.4): new queries extend the coverage list and the action space, the
networks expand preserving weights, and training continues with batches
biased toward the new queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..obs.clock import perf_counter
from ..contracts import STATE as _STRICT
from ..contracts import assert_finite
from ..db.database import Database
from ..db.query import AggregateQuery, SPJQuery
from ..obs import health, memory, metrics, telemetry, trace
from ..obs.runtime import STATE as _OBS
from ..db.sampling import variational_subsample
from ..datasets.workloads import Workload
from ..rl.parallel import MultiActorCollector, make_actor_specs
from ..rl.rollout import RolloutBuffer
from .action_space import ActionSpace, group_rows_into_actions
from .agent import ASQPAgent
from .approximation import ApproximationSet
from .config import ASQPConfig
from .environment import make_environment
from .inference import generate_approximation_set
from .preprocess import (
    PreprocessResult,
    build_coverage,
    embed_actions,
    preprocess,
    provenance_rows,
)
from .reward import QueryCoverage


@dataclass
class IterationRecord:
    """Diagnostics of one outer training iteration.

    Carries every :class:`~repro.rl.ppo.UpdateStats` field plus the
    iteration's timing split, so ``model.history`` is the single source
    of truth for both the ``train.update`` telemetry stream and any
    after-the-fact analysis (persistence round-trips it; the timing
    fields default to zero when loading models saved before they
    existed).
    """

    iteration: int
    mean_episode_reward: float
    policy_loss: float
    value_loss: float
    entropy: float
    kl_divergence: float
    clip_fraction: float
    n_samples: int = 0
    rollout_seconds: float = 0.0
    update_seconds: float = 0.0
    steps_per_second: float = 0.0
    explained_variance: float = 0.0
    grad_norm: float = 0.0

    def telemetry_fields(self) -> dict:
        """The flat dict emitted as one ``train.update`` telemetry row."""
        return {
            "iteration": self.iteration,
            "mean_episode_reward": self.mean_episode_reward,
            "policy_loss": self.policy_loss,
            "value_loss": self.value_loss,
            "entropy": self.entropy,
            "kl_divergence": self.kl_divergence,
            "clip_fraction": self.clip_fraction,
            "explained_variance": self.explained_variance,
            "grad_norm": self.grad_norm,
            "n_samples": self.n_samples,
            "rollout_seconds": self.rollout_seconds,
            "update_seconds": self.update_seconds,
            "steps_per_second": self.steps_per_second,
        }


@dataclass
class TrainedModel:
    """A trained ASQP-RL model bound to its database."""

    db: Database
    config: ASQPConfig
    agent: ASQPAgent
    preprocessed: PreprocessResult
    coverages: list[QueryCoverage]
    action_space: ActionSpace
    history: list[IterationRecord] = field(default_factory=list)
    setup_seconds: float = 0.0
    fine_tune_count: int = 0

    # -------------------------------------------------------------- #
    def approximation_set(
        self,
        requested_size: Optional[int] = None,
        greedy: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> ApproximationSet:
        """Generate an approximation set from the trained policy (Alg. 2).

        Rolls out one greedy trajectory plus ``config.n_candidate_rollouts``
        sampled ones and keeps the candidate with the best Eq. 1 score on
        the *training* coverage structures (no test information) — the
        sequential-selection analogue of taking the best of several policy
        samples.
        """
        rng = rng or np.random.default_rng(self.config.seed + 31)
        candidates = [
            generate_approximation_set(
                self.agent.actor,
                self.action_space,
                self.config,
                requested_size=requested_size,
                rng=rng,
                greedy=True,
            )
        ]
        if greedy:
            for _ in range(self.config.n_candidate_rollouts):
                candidates.append(
                    generate_approximation_set(
                        self.agent.actor,
                        self.action_space,
                        self.config,
                        requested_size=requested_size,
                        rng=rng,
                        greedy=False,
                    )
                )
        if len(candidates) == 1:
            return candidates[0]
        from .reward import CoverageTracker

        tracker = CoverageTracker(self.coverages)
        best = candidates[0]
        best_score = -1.0
        for candidate in candidates:
            value = tracker.score_with_keys(candidate.keys())
            if value > best_score:
                best_score = value
                best = candidate
        return best

    def approximation_database(
        self, requested_size: Optional[int] = None
    ) -> Database:
        return self.approximation_set(requested_size).to_database(self.db)

    def training_scores(self) -> np.ndarray:
        """Eq. 1 term of each training representative under the final set.

        Feeds the answerability estimator: the model's observed quality on
        the queries it was trained on.
        """
        from .reward import CoverageTracker

        tracker = CoverageTracker(self.coverages)
        tracker.add_keys(self.approximation_set().keys())
        return np.asarray(
            [tracker.query_score(q) for q in range(tracker.n_queries)]
        )

    def calibrated_count_scale(self, default: float = 1.0) -> float:
        """Self-calibrated COUNT/SUM rescaling factor for aggregate mode.

        The approximation set is a workload-*biased* sample, so uniform
        Horvitz–Thompson scaling by the global sampling fraction misfits.
        Instead, measure the inclusion rate the model actually achieves on
        its own training representatives — ``|q(T)| / |q(S)|`` per query,
        both known without touching test queries — and return the median.
        Used by the §6.4 aggregate evaluation (Fig. 12).
        """
        from ..db.executor import execute

        approx_db = self.approximation_database()
        ratios: list[float] = []
        for query in self.preprocessed.representatives:
            subset_size = len(execute(approx_db, query))
            full_size = len(execute(self.db, query))
            if subset_size > 0 and full_size > 0:
                ratios.append(full_size / subset_size)
        if not ratios:
            return default
        return float(np.median(ratios))

    # -------------------------------------------------------------- #
    def fine_tune(
        self,
        new_queries: Sequence[Union[SPJQuery, AggregateQuery]],
        iterations: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Fine-tune on drifted queries (paper §4.4).

        New queries are relaxed and executed; their provenance rows extend
        the action space, their coverage structures join the reward, and
        training resumes with query batches biased toward them.
        """
        if not new_queries:
            return
        rng = rng or np.random.default_rng(self.config.seed + 500 + self.fine_tune_count)
        config = self.config
        prep = self.preprocessed
        from ..embedding.relaxation import QueryRelaxer, RelaxationConfig

        relaxer = QueryRelaxer(
            prep.stats,
            RelaxationConfig(
                range_widen_fraction=config.relax_range_fraction,
                equality_siblings=config.relax_equality_siblings,
            ),
        )
        spj_queries = [
            q.strip_aggregates() if q.is_aggregate else q for q in new_queries
        ]
        weight = 1.0 / max(1, len(self.coverages))

        pool_rows, pool_sources = [], []
        new_coverages: list[QueryCoverage] = []
        base_query_index = len(self.coverages)
        for offset, query in enumerate(spj_queries):
            relaxed = relaxer.relax(query)
            rows = provenance_rows(self.db, relaxed)
            pool_rows.extend(rows)
            pool_sources.extend([base_query_index + offset] * len(rows))
            new_coverages.append(
                build_coverage(self.db, query, weight, config.frame_size, rng)
            )

        if pool_rows:
            target = max(
                config.group_size,
                int(config.action_space_target * config.group_size * 0.25),
            )
            sample = variational_subsample(pool_sources, target, rng)
            kept_rows = [pool_rows[p] for p in sample.positions]
            kept_sources = [pool_sources[p] for p in sample.positions]
            new_actions = group_rows_into_actions(
                kept_rows, kept_sources, config.group_size, rng
            )
            if new_actions:
                vectors = embed_actions(self.db, new_actions, prep.tuple_embedder)
                self.action_space = self.action_space.extend(new_actions, vectors)
                self.agent.expand_action_space(len(self.action_space))

        self.coverages.extend(new_coverages)
        new_indices = list(range(base_query_index, len(self.coverages)))
        # Extend the estimator inputs too.
        new_embeddings = prep.query_embedder.embed_workload(spj_queries)
        prep.representatives.extend(spj_queries)
        prep.representative_embeddings = np.vstack(
            [prep.representative_embeddings, new_embeddings]
        )
        prep.training_embeddings = np.vstack(
            [prep.training_embeddings, new_embeddings]
        )

        n_iterations = iterations or config.fine_tune_iterations
        run_training_loop(
            self,
            n_iterations=n_iterations,
            rng=rng,
            bias_queries=new_indices,
        )
        self.fine_tune_count += 1


def run_training_loop(
    model: TrainedModel,
    n_iterations: int,
    rng: np.random.Generator,
    bias_queries: Optional[Sequence[int]] = None,
) -> list[IterationRecord]:
    """Collect/update iterations with early stopping (Alg. 1 lines 5-10).

    ``bias_queries`` (fine-tuning) forces every other episode batch to be
    drawn from those query indices, aligning the reward with the drifted
    interest while retaining the original workload.

    Every iteration's :class:`UpdateStats` lands in an
    :class:`IterationRecord` appended to ``model.history`` — and, when
    observability is enabled, on the ``train.update`` telemetry stream —
    and the records of *this* call are returned.
    """
    config = model.config
    coverages = model.coverages
    if bias_queries:
        boosted = []
        bias_set = set(bias_queries)
        for i, coverage in enumerate(coverages):
            if i in bias_set:
                boosted.append(
                    QueryCoverage(
                        name=coverage.name,
                        weight=coverage.weight * 4.0,
                        denominator=coverage.denominator,
                        requirements=coverage.requirements,
                    )
                )
            else:
                boosted.append(coverage)
        coverages = boosted

    env_seed_sequence = np.random.SeedSequence(int(rng.integers(0, 2**31)))
    env_seeds = iter(env_seed_sequence.spawn(1024))

    def env_factory():
        return make_environment(
            config.environment,
            model.action_space,
            coverages,
            config,
            np.random.default_rng(next(env_seeds)),
        )

    specs = make_actor_specs(config.n_actors, seed=int(rng.integers(0, 2**31)))
    collector = MultiActorCollector(
        env_factory, model.agent.actor, model.agent.critic, specs
    )

    best_reward = -np.inf
    stale = 0
    start_iteration = len(model.history)
    records: list[IterationRecord] = []
    with trace.span("train.loop") as loop_span:
        if loop_span:
            loop_span.set(
                n_iterations=n_iterations, fine_tuning=bool(bias_queries)
            )
        for iteration in range(n_iterations):
            buffer = RolloutBuffer(gamma=config.gamma, lam=config.gae_lambda)
            rollout_start = perf_counter()
            with trace.span("train.rollout"):
                mean_reward = collector.collect(config.episodes_per_actor, buffer)
                batch = buffer.build(use_critic=config.use_actor_critic)
            rollout_seconds = perf_counter() - rollout_start
            update_start = perf_counter()
            with trace.span("train.update"):
                stats = model.agent.updater.update(batch)
            update_seconds = perf_counter() - update_start
            if _STRICT.enabled:
                assert_finite(
                    "train.iteration",
                    mean_episode_reward=mean_reward,
                    policy_loss=stats.policy_loss,
                    value_loss=stats.value_loss,
                    entropy=stats.entropy,
                    kl_divergence=stats.kl_divergence,
                )
            record = IterationRecord(
                iteration=start_iteration + iteration,
                mean_episode_reward=mean_reward,
                policy_loss=stats.policy_loss,
                value_loss=stats.value_loss,
                entropy=stats.entropy,
                kl_divergence=stats.kl_divergence,
                clip_fraction=stats.clip_fraction,
                explained_variance=stats.explained_variance,
                grad_norm=stats.grad_norm,
                n_samples=stats.n_samples,
                rollout_seconds=rollout_seconds,
                update_seconds=update_seconds,
                steps_per_second=(
                    stats.n_samples / rollout_seconds if rollout_seconds > 0 else 0.0
                ),
            )
            model.history.append(record)
            records.append(record)
            telemetry.emit("train.update", **record.telemetry_fields())
            if _OBS.enabled:
                health.active_monitor().observe_update(record.telemetry_fields())
            metrics.set_gauge("train.mean_episode_reward", mean_reward)
            metrics.add("train.iterations")
            metrics.add("train.samples", stats.n_samples)
            metrics.observe("train.rollout.seconds", rollout_seconds)
            metrics.observe("train.update.seconds", update_seconds)
            # Epoch boundary for the leak check: steady-state training
            # should show ~zero traced-byte growth between iterations.
            memory.mark_epoch("train.iteration")
            # Early stopping (Alg. 1 line 9) on reward plateau.
            if mean_reward > best_reward + config.early_stopping_min_delta:
                best_reward = mean_reward
                stale = 0
            else:
                stale += 1
                if stale >= config.early_stopping_patience:
                    break
    return records


class ASQPTrainer:
    """End-to-end training entry point (paper Alg. 1)."""

    def __init__(
        self,
        db: Database,
        workload: Workload,
        config: Optional[ASQPConfig] = None,
    ) -> None:
        self.db = db
        self.workload = workload
        self.config = config or ASQPConfig()

    def train(self) -> TrainedModel:
        """Pre-process, train, and return the model handle."""
        start = perf_counter()
        rng = np.random.default_rng(self.config.seed)
        with trace.span("train") as sp:
            with trace.span("train.preprocess"):
                prep = preprocess(self.db, self.workload, self.config, rng)
            agent = ASQPAgent(len(prep.action_space), self.config, rng)
            model = TrainedModel(
                db=self.db,
                config=self.config,
                agent=agent,
                preprocessed=prep,
                coverages=list(prep.coverages),
                action_space=prep.action_space,
            )
            run_training_loop(model, self.config.n_iterations, rng)
            model.setup_seconds = perf_counter() - start
            if sp:
                sp.set(
                    iterations=len(model.history),
                    actions=len(model.action_space),
                    setup_seconds=round(model.setup_seconds, 4),
                )
        return model
