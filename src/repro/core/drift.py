"""Interest-drift detection (paper §4.4, challenge C5, Fig. 7).

"Interest drift is identified when user queries deviate from the initial
model training query workload. When three or more queries deviate from the
training workload with confidence scores surpassing 0.8, our model
initiates a fine-tuning process tailored to the specific characteristics
of these queries."

:class:`DriftDetector` implements exactly that trigger: it accumulates
queries whose deviation confidence exceeds the threshold and fires once
the count reaches the trigger size, handing the accumulated queries to the
fine-tuning callback (wired up in :mod:`repro.core.session`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..db.query import AggregateQuery, SPJQuery
from ..obs import metrics as _metrics
from ..obs import telemetry as _telemetry

QueryLike = Union[SPJQuery, AggregateQuery]


@dataclass
class DriftEvent:
    """A fired drift trigger: the deviating queries and their confidences."""

    queries: list[QueryLike]
    confidences: list[float]


@dataclass
class DriftDetector:
    """Counts deviating queries and fires after ``trigger_count`` of them.

    Parameters
    ----------
    confidence_threshold:
        Minimum deviation confidence for a query to count (paper: 0.8).
    trigger_count:
        How many deviating queries trigger fine-tuning (paper: 3).
    """

    confidence_threshold: float = 0.8
    trigger_count: int = 3
    _pending: list[QueryLike] = field(default_factory=list)
    _pending_confidences: list[float] = field(default_factory=list)
    events_fired: int = 0

    def observe(self, query: QueryLike, deviation_confidence: float) -> DriftEvent | None:
        """Record one query observation; returns an event when triggered."""
        if deviation_confidence > self.confidence_threshold:
            self._pending.append(query)
            self._pending_confidences.append(deviation_confidence)
        if len(self._pending) >= self.trigger_count:
            event = DriftEvent(
                queries=list(self._pending),
                confidences=list(self._pending_confidences),
            )
            self._pending.clear()
            self._pending_confidences.clear()
            self.events_fired += 1
            mean_deviation = sum(event.confidences) / len(event.confidences)
            _telemetry.emit(
                "drift",
                pending_count=len(event.queries),
                mean_deviation=mean_deviation,
                events_fired=self.events_fired,
            )
            _metrics.add("drift.events")
            return event
        return None

    def observe_external(self, kind: str, magnitude: float) -> None:
        """Record an externally detected drift signal on the drift stream.

        The quality pipeline's calibration-drift detector
        (:mod:`repro.obs.quality`) reports here so every drift signal of
        a run — interest drift and calibration drift alike — lands on
        the one ``drift`` telemetry stream. External signals carry their
        own alerts and never touch the interest-drift trigger state.
        """
        _telemetry.emit(
            "drift",
            kind=kind,
            magnitude=float(magnitude),
            external=True,
        )
        _metrics.add(f"drift.external.{kind}")

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def reset(self) -> None:
        self._pending.clear()
        self._pending_confidences.clear()
