"""Data and query pre-processing (paper §4.2, Alg. 1 lines 1-4).

Pipeline::

    workload --(training fraction)--> Q_train
    Q_train --relaxation--> generalized queries --Emb_sql--> vectors
    vectors --clustering--> query representatives Q̂
    Q̂ (relaxed) --execute on D--> D̂ (provenance rows)
    D̂ --variational subsampling--> action-space rows
    rows --grouping + Emb_tab--> ActionSpace
    Q̂ (original) --execute on D--> CoverageTracker inputs (reward)

Challenges addressed: C1 (action space is a reduced set of joinable tuple
groups), C2 (only |Q̂| queries execute, once), C4 (relaxation pulls in
near-miss tuples beyond the known workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..obs.clock import perf_counter
from ..db.database import Database
from ..db.executor import execute
from ..db.query import SPJQuery
from ..db.sampling import variational_subsample
from ..db.statistics import TableStats, compute_database_stats
from ..db.table import Table
from ..datasets.workloads import Workload
from ..embedding.cluster import select_representatives
from ..embedding.query_embed import QueryEmbedder
from ..embedding.relaxation import QueryRelaxer, RelaxationConfig
from ..embedding.tuple_embed import TupleEmbedder
from .action_space import Action, ActionSpace, group_rows_into_actions
from .approximation import TupleKey
from .config import ASQPConfig
from .reward import QueryCoverage

#: Safety cap on provenance rows kept per query for reward tracking.
MAX_REQUIREMENT_ROWS = 5000


@dataclass
class PreprocessResult:
    """Everything the training phase consumes."""

    representatives: list[SPJQuery]
    relaxed_representatives: list[SPJQuery]
    representative_weights: np.ndarray
    representative_embeddings: np.ndarray
    training_embeddings: np.ndarray
    coverages: list[QueryCoverage]
    action_space: ActionSpace
    training_queries: list[SPJQuery]
    query_embedder: QueryEmbedder
    tuple_embedder: TupleEmbedder
    stats: dict[str, TableStats]
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def n_representatives(self) -> int:
        return len(self.representatives)


def provenance_rows(db: Database, query: SPJQuery) -> list[tuple[TupleKey, ...]]:
    """Distinct provenance requirements of a query's result on ``db``."""
    result = execute(db, query)
    tables = sorted(result.row_ids)
    seen: set[tuple[TupleKey, ...]] = set()
    rows: list[tuple[TupleKey, ...]] = []
    arrays = [result.row_ids[t] for t in tables]
    for i in range(len(result)):
        requirement = tuple(
            (tables[j], int(arrays[j][i])) for j in range(len(tables))
        )
        if requirement not in seen:
            seen.add(requirement)
            rows.append(requirement)
    return rows


def build_coverage(
    db: Database,
    query: SPJQuery,
    weight: float,
    frame_size: int,
    rng: Optional[np.random.Generator] = None,
) -> QueryCoverage:
    """Execute ``query`` on the full data and record its Eq. 1 inputs."""
    rows = provenance_rows(db, query)
    denominator = min(frame_size, len(rows))
    if len(rows) > MAX_REQUIREMENT_ROWS:
        if rng is None:
            rng = np.random.default_rng(0)
        picks = rng.choice(len(rows), size=MAX_REQUIREMENT_ROWS, replace=False)
        rows = [rows[p] for p in sorted(picks)]
    return QueryCoverage(
        name=query.name or query.to_sql()[:60],
        weight=weight,
        denominator=denominator,
        requirements=rows,
    )


class _RowPositionIndex:
    """Lazy per-table map from base row id to row position."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._maps: dict[str, dict[int, int]] = {}

    def position(self, table_name: str, row_id: int) -> int:
        mapping = self._maps.get(table_name)
        if mapping is None:
            table = self.db.table(table_name)
            mapping = {int(rid): pos for pos, rid in enumerate(table.row_ids)}
            self._maps[table_name] = mapping
        return mapping[row_id]

    def table(self, table_name: str) -> Table:
        return self.db.table(table_name)


def embed_actions(
    db: Database,
    actions: Sequence[Action],
    embedder: TupleEmbedder,
) -> np.ndarray:
    """``Emb_tab`` over the tuples of each action (normalized group mean)."""
    index = _RowPositionIndex(db)
    vectors = np.zeros((len(actions), embedder.dim))
    for i, action in enumerate(actions):
        rows = [
            (index.table(table), index.position(table, row_id))
            for table, row_id in action.keys
        ]
        vectors[i] = embedder.embed_group(rows)
    return vectors


def preprocess(
    db: Database,
    workload: Workload,
    config: ASQPConfig,
    rng: Optional[np.random.Generator] = None,
) -> PreprocessResult:
    """Run the full pre-processing pipeline (Alg. 1 lines 1-4)."""
    rng = rng or np.random.default_rng(config.seed)
    timings: dict[str, float] = {}

    t0 = perf_counter()
    stats = compute_database_stats(db)
    timings["stats"] = perf_counter() - t0

    # --- query pre-processing ------------------------------------- #
    t0 = perf_counter()
    spj = workload.spj_only()
    n_train = max(2, int(round(len(spj.queries) * config.training_fraction)))
    order = rng.permutation(len(spj.queries))
    train_indices = sorted(order[:n_train].tolist())
    training_queries = [spj.queries[i] for i in train_indices]
    training_weights = spj.weights[train_indices]

    relaxer = QueryRelaxer(
        stats,
        RelaxationConfig(
            range_widen_fraction=config.relax_range_fraction,
            equality_siblings=config.relax_equality_siblings,
        ),
    )
    relaxed_all = [relaxer.relax(q) for q in training_queries]
    embedder = QueryEmbedder(dim=config.embedding_dim, stats=stats)
    vectors = embedder.embed_workload(relaxed_all)

    n_representatives = (
        config.n_query_representatives
        if config.n_query_representatives is not None
        else len(training_queries)
    )
    rep_positions = select_representatives(vectors, n_representatives, rng)
    representatives = [training_queries[p] for p in rep_positions]
    relaxed_reps = [relaxed_all[p] for p in rep_positions]
    rep_weights = training_weights[rep_positions]
    total = rep_weights.sum()
    rep_weights = rep_weights / total if total > 0 else rep_weights
    # The estimator compares *incoming* (unrelaxed) queries to the
    # representatives, so its reference embeddings use original semantics;
    # the relaxed embeddings above are only for clustering.
    rep_embeddings = embedder.embed_workload(representatives)
    training_embeddings = embedder.embed_workload(training_queries)
    timings["query_preprocessing"] = perf_counter() - t0

    # --- reward structures (original-semantics representatives) ---- #
    t0 = perf_counter()
    coverages = [
        build_coverage(db, query, float(rep_weights[q]), config.frame_size, rng)
        for q, query in enumerate(representatives)
    ]
    timings["coverage"] = perf_counter() - t0

    # --- data pre-processing --------------------------------------- #
    # The candidate pool splits into *exact* rows (the representatives'
    # own result rows — these are what the reward rewards directly) and
    # *extension* rows that only the relaxed queries return (the
    # generalization reserve for future, unseen queries — challenge C4).
    # Exact rows get the larger share of the subsample budget.
    t0 = perf_counter()
    exact_rows: list[tuple[TupleKey, ...]] = []
    exact_sources: list[int] = []
    extension_rows: list[tuple[TupleKey, ...]] = []
    extension_sources: list[int] = []
    for q, relaxed in enumerate(relaxed_reps):
        exact_set = set(coverages[q].requirements)
        for row in exact_set:
            exact_rows.append(row)
            exact_sources.append(q)
        for row in provenance_rows(db, relaxed):
            if row not in exact_set:
                extension_rows.append(row)
                extension_sources.append(q)
    timings["execute_relaxed"] = perf_counter() - t0

    t0 = perf_counter()
    target_rows = config.action_space_target * config.group_size
    exact_target = int(round(target_rows * config.exact_row_share))
    exact_sample = variational_subsample(exact_sources, exact_target, rng)
    extension_sample = variational_subsample(
        extension_sources, max(0, target_rows - len(exact_sample)), rng
    )
    kept_rows = [exact_rows[p] for p in exact_sample.positions]
    kept_sources = [2 * exact_sources[p] for p in exact_sample.positions]
    kept_rows += [extension_rows[p] for p in extension_sample.positions]
    # Odd source codes keep extension rows grouped separately from exact
    # rows of the same query, so one action is either "known result rows"
    # or "generalization rows", never a dilution of both.
    kept_sources += [
        2 * extension_sources[p] + 1 for p in extension_sample.positions
    ]
    actions = group_rows_into_actions(
        kept_rows, kept_sources, config.group_size, rng
    )
    if not actions:
        raise ValueError(
            "pre-processing produced no actions: the relaxed representatives "
            "returned no rows — check the workload against the database"
        )
    tuple_embedder = TupleEmbedder(dim=config.embedding_dim, stats=stats)
    action_vectors = embed_actions(db, actions, tuple_embedder)
    action_space = ActionSpace(actions, action_vectors)
    timings["build_action_space"] = perf_counter() - t0

    return PreprocessResult(
        representatives=representatives,
        relaxed_representatives=relaxed_reps,
        representative_weights=rep_weights,
        representative_embeddings=rep_embeddings,
        training_embeddings=training_embeddings,
        coverages=coverages,
        action_space=action_space,
        training_queries=training_queries,
        query_embedder=embedder,
        tuple_embedder=tuple_embedder,
        stats=stats,
        timings=timings,
    )
