"""ASQP-RL core: the paper's primary contribution.

Pre-processing (relaxation, embedding, representative selection,
variational subsampling), the GSL/DRP environments, the PPO actor-critic
agent, training/inference, the answerability estimator, drift detection,
workload generation, and the interactive session facade.
"""

from .action_space import Action, ActionSpace, group_rows_into_actions
from .agent import ASQPAgent
from .approximation import ApproximationSet, TupleKey
from .config import ASQPConfig
from .drift import DriftDetector, DriftEvent
from .environment import (
    DropOneEnvironment,
    GSLEnvironment,
    HybridEnvironment,
    make_environment,
)
from .estimator import AnswerabilityEstimate, AnswerabilityEstimator
from .inference import generate_approximation_set
from .metric import (
    DEFAULT_FRAME_SIZE,
    aggregate_relative_error,
    pairwise_jaccard_diversity,
    per_query_scores,
    query_score,
    relative_error,
    result_diversity,
    score,
    workload_result_keys,
)
from .persistence import load_model, save_model
from .preprocess import PreprocessResult, build_coverage, preprocess, provenance_rows
from .reward import CoverageTracker, QueryCoverage
from .session import ASQPSession, ASQPSystem, QueryOutcome
from .trainer import ASQPTrainer, IterationRecord, TrainedModel, run_training_loop
from .workload_gen import WorkloadGenerator, generate_workload

__all__ = [
    "ASQPAgent",
    "ASQPConfig",
    "ASQPSession",
    "ASQPSystem",
    "ASQPTrainer",
    "Action",
    "ActionSpace",
    "AnswerabilityEstimate",
    "AnswerabilityEstimator",
    "ApproximationSet",
    "CoverageTracker",
    "DEFAULT_FRAME_SIZE",
    "DriftDetector",
    "DriftEvent",
    "DropOneEnvironment",
    "GSLEnvironment",
    "HybridEnvironment",
    "IterationRecord",
    "PreprocessResult",
    "QueryCoverage",
    "QueryOutcome",
    "TrainedModel",
    "TupleKey",
    "WorkloadGenerator",
    "aggregate_relative_error",
    "build_coverage",
    "generate_approximation_set",
    "generate_workload",
    "load_model",
    "save_model",
    "group_rows_into_actions",
    "make_environment",
    "pairwise_jaccard_diversity",
    "per_query_scores",
    "preprocess",
    "provenance_rows",
    "query_score",
    "relative_error",
    "result_diversity",
    "run_training_loop",
    "score",
    "workload_result_keys",
]
