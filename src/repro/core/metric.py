"""Quality metrics: the ANAQP score (Eq. 1), relative error (Eq. 2), diversity.

Eq. 1 of the paper::

    score(S) = (1/|Q|) * sum_q w(q) * min(1, |q(S)| / min(F, |q(T)|))

with ``sum_q w(q) = 1``. Read literally the expression normalizes twice
(both ``1/|Q|`` and the weight normalization); all reported scores in the
paper's §6 (e.g. 0.64 on IMDB) are only reachable under the standard
weighted-average reading, so :func:`score` computes
``sum_q w(q) * min(1, |q(S)| / min(F, |q(T)|))`` — identical to the
literal formula when ``w`` is interpreted as unnormalized per-query
importance with uniform value 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..db.database import Database
from ..db.executor import execute, execute_aggregate
from ..db.query import AggregateQuery, SPJQuery
from ..datasets.workloads import Workload

DEFAULT_FRAME_SIZE = 50


def query_score(
    full_result_size: int,
    subset_result_size: int,
    frame_size: int = DEFAULT_FRAME_SIZE,
) -> float:
    """Per-query term of Eq. 1: ``min(1, |q(S)| / min(F, |q(T)|))``.

    A query with an empty full result contributes 1 (nothing was missed).
    """
    if full_result_size <= 0:
        return 1.0
    denominator = min(frame_size, full_result_size)
    return min(1.0, subset_result_size / denominator)


def _valid_result_count(
    db: Database,
    subset: Database,
    query: SPJQuery,
    full_keys: Optional[frozenset] = None,
) -> tuple[int, int]:
    """``(|q(T)|, |q(S) ∩ q(T)|)`` over distinct result tuples.

    Intersecting with the true result matters for generative baselines:
    a *fabricated* tuple that happens to satisfy the predicates is not part
    of the query answer and must not count toward quality (the paper's
    critique of VAE-generated "false tuples"). For genuine sub-databases
    the intersection is a no-op (SPJ queries are monotone).
    """
    if full_keys is None:
        full_keys = frozenset(execute(db, query).tuple_keys())
    subset_keys = set(execute(subset, query).tuple_keys())
    return len(full_keys), len(subset_keys & full_keys)


def workload_result_keys(db: Database, workload: Workload) -> list[frozenset]:
    """Distinct result-tuple keys of every query on the full database.

    Precompute once when scoring many candidate subsets against the same
    workload (the k/F sweeps do this).
    """
    spj = workload.spj_only()
    return [frozenset(execute(db, query).tuple_keys()) for query in spj.queries]


def score(
    db: Database,
    subset: Database,
    workload: Workload,
    frame_size: int = DEFAULT_FRAME_SIZE,
    full_keys: Optional[Sequence[frozenset]] = None,
) -> float:
    """Eq. 1 evaluated by actually executing the workload on both databases.

    Parameters
    ----------
    db / subset:
        The full database and the approximation set (as a sub-database, or
        a synthetic database for generative baselines).
    workload:
        Weighted SPJ workload (aggregates are rewritten to SPJ first).
    frame_size:
        The paper's ``F``.
    full_keys:
        Optional precomputed :func:`workload_result_keys` output, to avoid
        re-running the workload on the full data across evaluations.
    """
    spj = workload.spj_only()
    total = 0.0
    for i, query in enumerate(spj.queries):
        cached = full_keys[i] if full_keys is not None else None
        full_size, valid = _valid_result_count(db, subset, query, cached)
        total += spj.weights[i] * query_score(full_size, valid, frame_size)
    return float(total)


def per_query_scores(
    db: Database,
    subset: Database,
    workload: Workload,
    frame_size: int = DEFAULT_FRAME_SIZE,
    full_keys: Optional[Sequence[frozenset]] = None,
) -> np.ndarray:
    """Unweighted per-query Eq. 1 terms (used by the estimator experiments)."""
    spj = workload.spj_only()
    values = np.zeros(len(spj.queries))
    for i, query in enumerate(spj.queries):
        cached = full_keys[i] if full_keys is not None else None
        full_size, valid = _valid_result_count(db, subset, query, cached)
        values[i] = query_score(full_size, valid, frame_size)
    return values


def audit_query(
    db: Database,
    subset: Database,
    query: Union[SPJQuery, AggregateQuery],
    frame_size: int = DEFAULT_FRAME_SIZE,
    scale_counts: Optional[float] = None,
) -> tuple[float, Optional[float], int]:
    """Ground truth for one served query: ``(recall, agg_rel_error, |q(T)|)``.

    The shadow auditor (:mod:`repro.obs.quality` via the session) calls
    this to re-measure an approximation-set answer against the full
    database: recall is the Eq. 1 frame term over distinct valid result
    tuples; for aggregate queries the Eq. 2 per-group relative error is
    measured too (``None`` for pure SPJ queries, whose answers have no
    aggregate to be wrong about).
    """
    if query.is_aggregate:
        spj = query.strip_aggregates()
        full_size, valid = _valid_result_count(db, subset, spj)
        recall = query_score(full_size, valid, frame_size)
        agg_error = aggregate_relative_error(
            db, subset, query, scale_counts=scale_counts
        )
        return recall, agg_error, full_size
    full_size, valid = _valid_result_count(db, subset, query)
    return query_score(full_size, valid, frame_size), None, full_size


# ------------------------------------------------------------------ #
# aggregate relative error (Eq. 2)
# ------------------------------------------------------------------ #
def relative_error(predicted: float, truth: float) -> float:
    """Eq. 2: ``|pred - truth| / |truth|`` (capped at 1 when truth is 0)."""
    if truth == 0 or not np.isfinite(truth):
        return 0.0 if predicted == truth else 1.0
    if not np.isfinite(predicted):
        return 1.0
    return min(1.0, abs(predicted - truth) / abs(truth))


def aggregate_relative_error(
    db: Database,
    subset: Database,
    query: AggregateQuery,
    scale_counts: Optional[float] = None,
) -> float:
    """Average per-group relative error of an aggregate on the subset.

    Missing groups count as error 1 (a "complete mismatch", paper §6.4).
    ``scale_counts`` optionally rescales COUNT/SUM answers from the subset
    by an inverse sampling fraction (Horvitz–Thompson style), which is what
    a sampling-based AQP engine would do; AVG/MIN/MAX are never scaled.
    """
    truth = execute_aggregate(db, query).as_mapping()
    approx = execute_aggregate(subset, query).as_mapping()
    if not truth:
        return 0.0
    scalable = {
        spec.output_name()
        for spec in query.aggregates
        if spec.func.value in ("COUNT", "SUM")
    }
    errors: list[float] = []
    for key, true_row in truth.items():
        approx_row = approx.get(key)
        for name, true_value in true_row.items():
            if approx_row is None or name not in approx_row:
                errors.append(1.0)
                continue
            predicted = approx_row[name]
            if scale_counts is not None and name in scalable:
                predicted = predicted * scale_counts
            errors.append(relative_error(predicted, true_value))
    return float(np.mean(errors)) if errors else 0.0


# ------------------------------------------------------------------ #
# diversity (paper §6.2, "Diversity Comparison")
# ------------------------------------------------------------------ #
def pairwise_jaccard_diversity(results: Sequence[set]) -> float:
    """Mean pairwise Jaccard *distance* among result sets.

    The paper measures "result diversity using a standard metric based on
    pairwise Jaccard distance among query answers" — higher is more
    diverse. Empty pairs contribute distance 0.
    """
    n = len(results)
    if n < 2:
        return 0.0
    distances: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            union = results[i] | results[j]
            if not union:
                distances.append(0.0)
                continue
            intersection = results[i] & results[j]
            distances.append(1.0 - len(intersection) / len(union))
    return float(np.mean(distances))


def result_diversity(
    db: Database,
    workload: Workload,
    limit: int = 100,
) -> float:
    """Diversity of the answers a database gives to a workload.

    Each query runs with ``LIMIT limit`` (the paper uses LIMIT 100); the
    result identity of a row is its projected-value tuple.
    """
    spj = workload.spj_only()
    answer_sets: list[set] = []
    for query in spj.queries:
        result = execute(db, query.with_limit(limit))
        answer_sets.append(set(result.tuple_keys()))
    return pairwise_jaccard_diversity(answer_sets)
