"""The approximation set: per-table base row ids plus conversions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Tuple

from ..db.database import Database

TupleKey = Tuple[str, int]  # (table name, base row id)


@dataclass
class ApproximationSet:
    """A set of base tuples, grouped by table.

    This is the paper's ``S = {S_1, ..., S_n}``: per-table subsets whose
    total size is bounded by the memory budget ``k``. Conversion to a
    queryable :class:`~repro.db.database.Database` goes through
    :meth:`to_database`.
    """

    rows: dict[str, set[int]] = field(default_factory=dict)

    @classmethod
    def from_keys(cls, keys: Iterable[TupleKey]) -> "ApproximationSet":
        approx = cls()
        approx.add_keys(keys)
        return approx

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[int]]) -> "ApproximationSet":
        return cls(rows={t: set(int(i) for i in ids) for t, ids in mapping.items()})

    # -------------------------------------------------------------- #
    def add_keys(self, keys: Iterable[TupleKey]) -> None:
        for table, row_id in keys:
            self.rows.setdefault(table, set()).add(int(row_id))

    def remove_keys(self, keys: Iterable[TupleKey]) -> None:
        for table, row_id in keys:
            bucket = self.rows.get(table)
            if bucket is not None:
                bucket.discard(int(row_id))

    def __contains__(self, key: TupleKey) -> bool:
        table, row_id = key
        return int(row_id) in self.rows.get(table, ())

    def total_size(self) -> int:
        """Total number of tuples — the quantity the budget ``k`` bounds."""
        return sum(len(ids) for ids in self.rows.values())

    def keys(self) -> list[TupleKey]:
        out: list[TupleKey] = []
        for table in sorted(self.rows):
            out.extend((table, row_id) for row_id in sorted(self.rows[table]))
        return out

    def copy(self) -> "ApproximationSet":
        return ApproximationSet(rows={t: set(ids) for t, ids in self.rows.items()})

    def sampling_fraction(self, db: Database) -> float:
        """``|S| / |T|`` over the tables this set covers, in (0, 1].

        The shadow auditor uses the inverse as a Horvitz–Thompson scale
        for COUNT/SUM audits (see
        :func:`repro.core.metric.aggregate_relative_error`): the set is
        not a uniform sample, so this is the best single-factor
        correction available without per-table bookkeeping.
        """
        covered = sum(
            len(db.table(t)) for t in self.rows if db.has_table(t)
        )
        if covered <= 0:
            return 1.0
        return min(1.0, max(self.total_size(), 1) / covered)

    # -------------------------------------------------------------- #
    def to_database(self, db: Database, name: str = "") -> Database:
        """Materialize as a queryable sub-database of ``db``."""
        return db.subset(
            {t: sorted(ids) for t, ids in self.rows.items()},
            name=name or f"{db.name}:approx",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{t}:{len(ids)}" for t, ids in sorted(self.rows.items()))
        return f"ApproximationSet({parts}; total={self.total_size()})"
