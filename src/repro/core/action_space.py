"""The RL action space: groups of joinable tuples.

Paper §4.2/§4.3: an action "encompasses multiple tuples sourced from
different tables". Selecting tuples independently per table risks
unjoinable picks, so actions are built from *result rows* of the executed
(relaxed) query representatives — each action bundles the provenance
tuples of a few result rows of one query, which are joinable by
construction. The action space also stores a vector representation per
action (the ``Emb_tab`` output), feeding the RL state/featurization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .approximation import TupleKey


@dataclass(frozen=True)
class Action:
    """One selectable action: a set of base tuples plus its origin query."""

    keys: tuple[TupleKey, ...]
    source_query: int = -1

    def __len__(self) -> int:
        return len(self.keys)


class ActionSpace:
    """An indexed list of actions with embeddings.

    Supports extension at fine-tuning time (paper §4.4: drift fine-tuning
    introduces tuples relevant to the new queries).
    """

    def __init__(
        self,
        actions: Sequence[Action],
        embeddings: Optional[np.ndarray] = None,
        embedding_dim: int = 64,
    ) -> None:
        if not actions:
            raise ValueError("action space must contain at least one action")
        self._actions = list(actions)
        if embeddings is None:
            embeddings = np.zeros((len(self._actions), embedding_dim))
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if len(embeddings) != len(self._actions):
            raise ValueError(
                f"{len(embeddings)} embeddings for {len(self._actions)} actions"
            )
        self._embeddings = embeddings

    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._actions)

    def __getitem__(self, index: int) -> Action:
        return self._actions[index]

    def __iter__(self):
        return iter(self._actions)

    @property
    def embeddings(self) -> np.ndarray:
        return self._embeddings

    def keys_of(self, index: int) -> tuple[TupleKey, ...]:
        return self._actions[index].keys

    def mean_action_size(self) -> float:
        return float(np.mean([len(a) for a in self._actions]))

    def total_distinct_tuples(self) -> int:
        keys: set[TupleKey] = set()
        for action in self._actions:
            keys.update(action.keys)
        return len(keys)

    # -------------------------------------------------------------- #
    def extend(self, actions: Sequence[Action], embeddings: np.ndarray) -> "ActionSpace":
        """A new, larger action space (used by drift fine-tuning)."""
        if len(actions) != len(embeddings):
            raise ValueError(
                f"{len(embeddings)} embeddings for {len(actions)} new actions"
            )
        merged = list(self._actions) + list(actions)
        stacked = np.vstack([self._embeddings, np.asarray(embeddings)])
        return ActionSpace(merged, stacked)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ActionSpace(n={len(self)}, mean_size={self.mean_action_size():.1f}, "
            f"distinct_tuples={self.total_distinct_tuples()})"
        )


def group_rows_into_actions(
    row_requirements: Sequence[tuple[TupleKey, ...]],
    source_queries: Sequence[int],
    group_size: int,
    rng: np.random.Generator,
) -> list[Action]:
    """Bundle result rows into actions of ~``group_size`` rows each.

    Rows are grouped within their source query (keeping each action
    joinable/coherent) after a shuffle, so groups are not biased by result
    order. Duplicate tuple keys within a group collapse.
    """
    if group_size < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    by_query: dict[int, list[int]] = {}
    for i, q in enumerate(source_queries):
        by_query.setdefault(q, []).append(i)

    actions: list[Action] = []
    for q in sorted(by_query):
        indices = by_query[q]
        order = rng.permutation(len(indices))
        for start in range(0, len(indices), group_size):
            chunk = [indices[j] for j in order[start : start + group_size]]
            keys: list[TupleKey] = []
            seen: set[TupleKey] = set()
            for row_index in chunk:
                for key in row_requirements[row_index]:
                    if key not in seen:
                        seen.add(key)
                        keys.append(key)
            if keys:
                actions.append(Action(keys=tuple(keys), source_query=q))
    return actions
