"""The ASQP-RL agent: actor-critic PPO over the tabular action space.

Bundles network construction from :class:`~repro.core.config.ASQPConfig`
(including the Fig. 3 ablation variants) and supports *expansion* of the
action space — used when drift fine-tuning adds actions for new queries:
existing weights are preserved and new rows/columns are freshly
initialized, so the fine-tuned policy starts from the trained one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rl.nn import MLP
from ..rl.policy import ActorNetwork, CriticNetwork
from ..rl.ppo import PPOConfig, PPOUpdater
from .config import ASQPConfig


class ASQPAgent:
    """Actor (+ optional critic) + PPO updater, configured per ablation."""

    def __init__(
        self,
        n_actions: int,
        config: ASQPConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.actor = ActorNetwork(n_actions, rng, hidden=tuple(config.hidden_sizes))
        self.critic = (
            CriticNetwork(n_actions, rng, hidden=tuple(config.hidden_sizes))
            if config.use_actor_critic
            else None
        )
        self._updater_rng = np.random.default_rng(config.seed + 101)
        self.updater = self._make_updater()

    @property
    def n_actions(self) -> int:
        return self.actor.n_actions

    def _make_updater(self) -> PPOUpdater:
        ppo_config = PPOConfig(
            learning_rate=self.config.learning_rate,
            clip_epsilon=self.config.clip_epsilon,
            entropy_coef=self.config.entropy_coef,
            kl_coef=self.config.kl_coef,
            update_epochs=self.config.update_epochs,
            minibatch_size=self.config.minibatch_size,
            use_clip=self.config.use_ppo_clip,
            use_critic=self.config.use_actor_critic,
        )
        return PPOUpdater(self.actor, self.critic, ppo_config, rng=self._updater_rng)

    # -------------------------------------------------------------- #
    def expand_action_space(self, new_n_actions: int) -> None:
        """Grow the networks to a larger action space, preserving weights.

        The state is the multi-hot selection vector, so both the actor's
        input and output dimensions (and the critic's input) grow from
        ``n`` to ``new_n_actions``.
        """
        old_n = self.n_actions
        if new_n_actions < old_n:
            raise ValueError(
                f"cannot shrink the action space: {old_n} -> {new_n_actions}"
            )
        if new_n_actions == old_n:
            return
        init_rng = np.random.default_rng(self.config.seed + 997)
        self.actor = _expanded_actor(self.actor, new_n_actions, init_rng,
                                     tuple(self.config.hidden_sizes))
        if self.critic is not None:
            self.critic = _expanded_critic(self.critic, new_n_actions, init_rng,
                                           tuple(self.config.hidden_sizes))
        # Fresh optimizer state for the new parameter shapes.
        self.updater = self._make_updater()


def _copy_overlap(target: MLP, source: MLP) -> None:
    """Copy the overlapping sub-blocks of every layer from source to target."""
    for t_w, s_w in zip(target.weights, source.weights):
        rows = min(t_w.shape[0], s_w.shape[0])
        cols = min(t_w.shape[1], s_w.shape[1])
        t_w[:rows, :cols] = s_w[:rows, :cols]
    for t_b, s_b in zip(target.biases, source.biases):
        n = min(len(t_b), len(s_b))
        t_b[:n] = s_b[:n]


def _expanded_actor(
    actor: ActorNetwork,
    new_n_actions: int,
    rng: np.random.Generator,
    hidden: tuple[int, ...],
) -> ActorNetwork:
    expanded = ActorNetwork(new_n_actions, rng, hidden=hidden)
    _copy_overlap(expanded.net, actor.net)
    return expanded


def _expanded_critic(
    critic: CriticNetwork,
    new_state_dim: int,
    rng: np.random.Generator,
    hidden: tuple[int, ...],
) -> CriticNetwork:
    expanded = CriticNetwork(new_state_dim, rng, hidden=hidden)
    _copy_overlap(expanded.net, critic.net)
    return expanded
