"""The user-facing mediator: train once, then query interactively.

:class:`ASQPSystem` is the facade of the whole paper system (Fig. 1):
``fit`` runs pre-processing + RL training (generating a workload first if
none is given, §4.5) and returns an :class:`ASQPSession`. The session
routes each user query through the answerability estimator — answering
from the approximation set when confident, falling back to the full
database otherwise — and watches for interest drift, fine-tuning the model
when the drift trigger fires (§4.4).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..obs.clock import perf_counter
from ..db.database import Database
from ..db.executor import AggregateResult, ResultSet, execute, execute_aggregate
from ..obs import health, memory, metrics, quality, telemetry, trace
from ..obs import context as obs_context
from ..obs.runtime import STATE as _OBS
from ..db.query import AggregateQuery, SPJQuery
from ..datasets.workloads import Workload
from . import metric
from .approximation import ApproximationSet
from .config import ASQPConfig
from .drift import DriftDetector, DriftEvent
from .estimator import AnswerabilityEstimate, AnswerabilityEstimator
from .trainer import ASQPTrainer, TrainedModel
from .workload_gen import WorkloadGenerator

QueryLike = Union[SPJQuery, AggregateQuery]


@dataclass
class AuditOutcome:
    """Ground-truth measurement of one shadow-audited answer."""

    recall: float                          # Eq. 1 frame term vs full D
    agg_rel_error: Optional[float] = None  # Eq. 2, aggregates only
    cost_seconds: float = 0.0
    low_quality: bool = False


@dataclass
class QueryOutcome:
    """What the session returns for one user query."""

    result: Union[ResultSet, AggregateResult]
    used_approximation: bool
    estimate: AnswerabilityEstimate
    elapsed_seconds: float
    drift_event: Optional[DriftEvent] = None
    fine_tuned: bool = False
    #: Set when the shadow auditor sampled this answer (recorded runs
    #: with an active repro.obs.quality monitor only).
    audit: Optional[AuditOutcome] = None

    def __len__(self) -> int:
        return len(self.result)


class ASQPSession:
    """An interactive session over a trained model."""

    def __init__(
        self,
        model: TrainedModel,
        auto_fine_tune: bool = True,
        workload_generator: Optional[WorkloadGenerator] = None,
        result_cache_size: int = 0,
    ) -> None:
        self.model = model
        self.config = model.config
        self.auto_fine_tune = auto_fine_tune
        self.workload_generator = workload_generator
        self.approximation_set: ApproximationSet = model.approximation_set()
        self.approx_db: Database = self.approximation_set.to_database(model.db)
        self.estimator = self._build_estimator()
        self.drift_detector = DriftDetector(
            confidence_threshold=self.config.drift_confidence,
            trigger_count=self.config.drift_trigger_count,
        )
        self.query_log: list[QueryLike] = []
        # Optional session-level result cache: exploratory sessions repeat
        # queries verbatim, so cache (sql text, source) -> result. Entries
        # are invalidated wholesale on refresh()/fine_tune().
        self._result_cache_size = max(0, result_cache_size)
        self._result_cache: dict[tuple[str, bool], object] = {}
        self.cache_hits = 0

    # -------------------------------------------------------------- #
    def _build_estimator(self) -> AnswerabilityEstimator:
        prep = self.model.preprocessed
        estimator = AnswerabilityEstimator(
            embedder=prep.query_embedder,
            representative_embeddings=prep.representative_embeddings,
            training_scores=self.model.training_scores(),
            threshold=self.config.answerable_threshold,
            calibration_embeddings=prep.training_embeddings,
        )
        if _OBS.enabled:  # leave-one-out pass, so only on recorded runs
            metrics.set_gauge(
                "estimator.calibration_error", estimator.calibration_error()
            )
        return estimator

    def refresh(self) -> None:
        """Regenerate the approximation set and estimator from the model."""
        self.approximation_set = self.model.approximation_set()
        self.approx_db = self.approximation_set.to_database(self.model.db)
        self.estimator = self._build_estimator()
        self._result_cache.clear()

    # -------------------------------------------------------------- #
    def query(
        self,
        query: QueryLike,
        allow_full_database: bool = True,
        confidence_threshold: Optional[float] = None,
    ) -> QueryOutcome:
        """Answer a query, deciding between the approximation set and D.

        Parameters
        ----------
        allow_full_database:
            When False, always answer from the approximation set (the user
            declined the slow path).
        confidence_threshold:
            Override the session threshold — e.g. the paper's full-system
            variants query the database below predicted score 0.6 / 0.8.
        """
        self.query_log.append(query)
        # On recorded runs the session opens the request context itself,
        # so the root span, every telemetry record, and the quality
        # pipeline share one trace id (nested executes reuse it via
        # context.ensure). Disabled runs skip the context entirely.
        scope = obs_context.ensure() if _OBS.enabled else nullcontext()
        with scope, trace.span("session.query") as sp:
            estimate = self.estimator.estimate(query)
            threshold = (
                confidence_threshold
                if confidence_threshold is not None
                else self.config.answerable_threshold
            )
            use_approx = (not allow_full_database) or estimate.confidence >= threshold

            start = perf_counter()
            target = self.approx_db if use_approx else self.model.db
            cache_key = (query.to_sql(), use_approx)
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                self.cache_hits += 1
                metrics.add("session.result_cache.hits")
                result: Union[ResultSet, AggregateResult] = cached  # type: ignore[assignment]
            elif query.is_aggregate:
                result = execute_aggregate(target, query)
            else:
                result = execute(target, query)
            if (
                cached is None
                and self._result_cache_size
                and len(self._result_cache) < self._result_cache_size
            ):
                self._result_cache[cache_key] = result
            elapsed = perf_counter() - start

            drift_event = self.drift_detector.observe(
                query, self.estimator.deviation_confidence(query)
            )
            fine_tuned = False
            if drift_event is not None and self.auto_fine_tune:
                with trace.span("session.fine_tune"):
                    self.fine_tune(drift_event.queries)
                fine_tuned = True

            outcome = QueryOutcome(
                result=result,
                used_approximation=use_approx,
                estimate=estimate,
                elapsed_seconds=elapsed,
                drift_event=drift_event,
                fine_tuned=fine_tuned,
            )
            if sp:
                sp.set(source="approx" if use_approx else "full")
                sp.count("rows_out", len(result))
                realized = self._log_outcome(query, outcome, cached is not None)
                self._shadow_audit(query, outcome, realized, sp)
        return outcome

    def _log_outcome(
        self, query: QueryLike, outcome: QueryOutcome, cache_hit: bool
    ) -> float:
        """One ``query`` telemetry row: estimate vs. realized outcome.

        ``realized_frame_score`` is the frame term of Eq. 1 the answer
        actually delivered — ``min(1, rows / F)`` — the live counterpart
        of the estimator's predicted answerability, so the two columns of
        the JSONL line quantify estimator calibration over a session.
        Returns the realized score for the quality pipeline.
        """
        estimate = outcome.estimate
        realized = min(1.0, len(outcome.result) / max(1, self.config.frame_size))
        telemetry.emit(
            "query",
            sql=query.to_sql()[:200],
            used_approximation=outcome.used_approximation,
            confidence=estimate.confidence,
            familiarity=estimate.familiarity,
            competence=estimate.competence,
            answerable=estimate.answerable,
            rows=len(outcome.result),
            realized_frame_score=realized,
            elapsed_seconds=outcome.elapsed_seconds,
            drift=outcome.drift_event is not None,
            fine_tuned=outcome.fine_tuned,
            cache_hit=cache_hit,
        )
        metrics.add("session.queries")
        metrics.add(
            "session.approx_answers" if outcome.used_approximation
            else "session.full_db_answers"
        )
        metrics.observe("session.query.seconds", outcome.elapsed_seconds)
        metrics.observe("session.confidence", estimate.confidence)
        metrics.observe("session.realized_frame_score", realized)
        # _log_outcome only runs inside a live span (obs enabled), so the
        # health monitor sees every calibration pair of a recorded run.
        monitor = health.active_monitor()
        monitor.observe_calibration(estimate.confidence, realized)
        self.estimator.note_outcome(estimate.confidence, realized)
        metrics.set_gauge(
            "estimator.online_calibration_error",
            self.estimator.online_calibration_error(),
        )
        # Epoch boundary for the leak check: repeated query answering
        # should not accumulate traced bytes between queries.
        memory.mark_epoch("session.query")
        if outcome.drift_event is not None:
            monitor.observe_drift({
                "pending_count": len(outcome.drift_event.queries),
                "mean_deviation": float(
                    np.mean(outcome.drift_event.confidences)
                ),
            })
        return realized

    def _shadow_audit(
        self,
        query: QueryLike,
        outcome: QueryOutcome,
        realized: float,
        sp: trace.Span,
    ) -> None:
        """Quality accounting plus the sampled ground-truth audit.

        Every answered query feeds the quality monitor's calibration
        accounting; approximation-set answers whose trace id wins the
        audit coin are re-executed against the full database right here
        (the obs layer never touches a database — it only receives the
        measured numbers). Low-quality results are stamped onto the root
        span so the tail sampler retains the trace as evidence.
        """
        auditor = quality.active()
        if auditor is None:
            return
        estimate = outcome.estimate
        drift = auditor.observe_query(
            predicted=estimate.confidence,
            observed=realized,
            used_approximation=outcome.used_approximation,
            elapsed_seconds=outcome.elapsed_seconds,
        )
        if drift is not None:
            self.drift_detector.observe_external("calibration", drift.bias)
        if not outcome.used_approximation:
            return  # full-database answers are ground truth already
        trace_id = obs_context.current_trace_id()
        if not auditor.should_audit(trace_id):
            return
        start = perf_counter()
        with trace.span("session.shadow_audit") as audit_sp:
            recall, agg_error, full_rows = metric.audit_query(
                self.model.db,
                self.approx_db,
                query,
                frame_size=self.config.frame_size,
                scale_counts=1.0
                / self.approximation_set.sampling_fraction(self.model.db),
            )
            if audit_sp:
                audit_sp.set(recall=round(recall, 4), full_rows=full_rows)
        cost = perf_counter() - start
        low_quality = auditor.record_audit(
            recall=recall,
            predicted=estimate.confidence,
            observed=realized,
            agg_rel_error=agg_error,
            cost_seconds=cost,
            sql=query.to_sql(),
            trace_id=trace_id,
        )
        outcome.audit = AuditOutcome(
            recall=recall,
            agg_rel_error=agg_error,
            cost_seconds=cost,
            low_quality=low_quality,
        )
        stats = getattr(outcome.result, "stats", None)
        if stats is not None:
            stats.audited = True
            stats.audit_recall = recall
            stats.audit_agg_rel_error = agg_error
        sp.set(audit_recall=round(recall, 4))
        if low_quality:
            sp.set(low_quality=1)

    # -------------------------------------------------------------- #
    def fine_tune(self, queries: list[QueryLike]) -> None:
        """Fine-tune the model on drifted queries and refresh the session.

        When a workload generator is attached (no-workload mode), it is
        first refined with the user's queries and contributes additional
        generated queries aligned with the new interest (§4.5).
        """
        training_queries = list(queries)
        if self.workload_generator is not None:
            self.workload_generator.refine_with_user_queries(queries)
            generated = self.workload_generator.generate(
                max(2, len(queries)), name_prefix="drift_gen"
            )
            training_queries.extend(generated.queries)
        self.model.fine_tune(training_queries)
        self.refresh()


class ASQPSystem:
    """Facade: configure once, ``fit`` per database/workload."""

    def __init__(self, config: Optional[ASQPConfig] = None) -> None:
        self.config = config or ASQPConfig()

    def fit(
        self,
        db: Database,
        workload: Optional[Workload] = None,
        n_generated_queries: int = 40,
        auto_fine_tune: bool = True,
    ) -> ASQPSession:
        """Train on the workload (generating one if absent) and open a session."""
        generator: Optional[WorkloadGenerator] = None
        if workload is None or len(workload) == 0:
            generator = WorkloadGenerator(
                db, np.random.default_rng(self.config.seed + 17)
            )
            workload = generator.generate(n_generated_queries)
        trainer = ASQPTrainer(db, workload, self.config)
        model = trainer.train()
        return ASQPSession(
            model,
            auto_fine_tune=auto_fine_tune,
            workload_generator=generator,
        )

    def fit_within_budget(
        self,
        db: Database,
        workload: Workload,
        time_budget_seconds: float,
        auto_fine_tune: bool = True,
    ) -> ASQPSession:
        """Adaptive Configuration (paper §4.5): fit inside a time budget.

        A short probe run (ASQP-Light settings, two iterations) measures
        the per-iteration cost on this database/workload; the measurement
        picks the point on the light ↔ full quality spectrum whose
        projected training time fits the budget, and training runs there.
        The budget steers the quality/time trade-off — it is a target, not
        a hard interrupt.
        """
        if time_budget_seconds <= 0:
            raise ValueError(
                f"time budget must be positive, got {time_budget_seconds}"
            )
        probe_config = ASQPConfig.light(
            memory_budget=self.config.memory_budget,
            frame_size=self.config.frame_size,
            n_iterations=2,
            n_actors=min(2, self.config.n_actors),
            action_space_target=max(
                50, self.config.action_space_target // 4
            ),
            seed=self.config.seed,
        )
        probe_start = perf_counter()
        ASQPTrainer(db, workload, probe_config).train()
        probe_seconds = perf_counter() - probe_start

        # The full configuration costs roughly `cost_ratio` probes: more
        # iterations, more actors/episodes, and a larger action space.
        full = ASQPConfig()
        cost_ratio = (
            (full.n_iterations / probe_config.n_iterations)
            * (self.config.n_actors / probe_config.n_actors)
            * (self.config.action_space_target / probe_config.action_space_target)
            * 0.5  # probe includes one-off preprocessing
        )
        projected_full = probe_seconds * cost_ratio
        fraction = float(np.clip(time_budget_seconds / max(projected_full, 1e-9), 0.0, 1.0))
        config = ASQPConfig.adaptive(
            fraction,
            memory_budget=self.config.memory_budget,
            frame_size=self.config.frame_size,
            seed=self.config.seed,
        )
        model = ASQPTrainer(db, workload, config).train()
        return ASQPSession(model, auto_fine_tune=auto_fine_tune)
