"""RL environments over the tabular action space (paper §5.2).

Three environments, matching the Fig. 3 ablation:

* **GSL** (gradual-set-learning) — the production choice. Episodes start
  from the empty set; each action adds a group of joinable tuples; the
  reward is the Eq. 1 score of the new state on the episode's query batch;
  the episode ends when the memory budget ``k`` is reached.
* **DRP** (drop-one) — starts from a full random set of ``k`` tuples; each
  step swaps one selected group out (uniformly at random — the instability
  the paper reports) and the policy-chosen group in; reward is the score
  *delta*; the episode runs to a fixed horizon.
* **DRP+GSL** — grows the set GSL-style to the budget, then refines with
  DRP swaps for half the horizon.

All environments expose the same multi-hot state over the action space and
use action masking to forbid re-selecting a group (paper §4.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..rl.parallel import Environment
from .action_space import ActionSpace
from .approximation import ApproximationSet
from .config import ASQPConfig
from .reward import CoverageTracker, QueryCoverage


class _BaseTabularEnv(Environment):
    """Shared machinery: selection state, masking, budgeted growth."""

    def __init__(
        self,
        action_space: ActionSpace,
        coverages: Sequence[QueryCoverage],
        config: ASQPConfig,
        rng: np.random.Generator,
        query_batch: Optional[Sequence[int]] = None,
    ) -> None:
        self.action_space = action_space
        self.config = config
        self.rng = rng
        self.tracker = CoverageTracker(coverages)
        self._fixed_batch = list(query_batch) if query_batch is not None else None
        self._weights = np.asarray(
            [max(c.weight, 1e-12) for c in coverages], dtype=np.float64
        )
        self._weights /= self._weights.sum()
        self.selected = np.zeros(len(action_space), dtype=bool)
        self.approx = ApproximationSet()
        self.batch: list[int] = []

    # ------------------------------------------------------------ #
    @property
    def n_actions(self) -> int:
        return len(self.action_space)

    def _state(self) -> np.ndarray:
        return self.selected.astype(np.float64)

    def _mask(self) -> np.ndarray:
        return ~self.selected

    def _sample_batch(self) -> list[int]:
        if self._fixed_batch is not None:
            return list(self._fixed_batch)
        n = len(self._weights)
        size = min(self.config.query_batch_size, n)
        picks = self.rng.choice(n, size=size, replace=False, p=self._weights)
        return [int(p) for p in picks]

    def _apply_add(self, action: int) -> None:
        # One batch tracker update per action group (CSR scatter), not one
        # incidence walk per key.
        self.selected[action] = True
        keys = self.action_space.keys_of(action)
        self.approx.add_keys(keys)
        self.tracker.add_keys(keys)

    def _apply_remove(self, action: int) -> None:
        self.selected[action] = False
        keys = self.action_space.keys_of(action)
        self.approx.remove_keys(keys)
        self.tracker.remove_keys(keys)

    def _reset_selection(self) -> None:
        self.selected[:] = False
        self.approx = ApproximationSet()
        self.tracker.reset()

    @property
    def budget_reached(self) -> bool:
        return self.approx.total_size() >= self.config.memory_budget

    def approximation_set(self) -> ApproximationSet:
        return self.approx.copy()

    def current_score(self) -> float:
        """Full-batch Eq. 1 score of the current state."""
        return self.tracker.batch_score()


class GSLEnvironment(_BaseTabularEnv):
    """Gradual-set-learning: grow from empty to the budget.

    The paper defines the GSL reward as ``Score(S_{t+1})`` on the episode's
    query batch. With ``gsl_delta_rewards`` (the default) the environment
    emits the telescoped form ``Score(S_{t+1}) − Score(S_t)`` instead: the
    episode return is identical (the sum telescopes to the final score), so
    the optimal policy is unchanged, but each step's reward is the action's
    own marginal contribution — much better-conditioned credit assignment
    for the small numpy networks this reproduction trains.
    """

    def reset(self) -> tuple[np.ndarray, np.ndarray]:
        self._reset_selection()
        self.batch = self._sample_batch()
        self._last_score = self.tracker.batch_score(self.batch)
        return self._state(), self._mask()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, np.ndarray]:
        if self.selected[action]:
            raise ValueError(f"action {action} already selected (mask violation)")
        diversity_bonus = self._diversity_bonus(action)
        self._apply_add(action)
        new_score = self.tracker.batch_score(self.batch)
        if self.config.gsl_delta_rewards:
            reward = new_score - self._last_score
        else:
            reward = new_score
        reward += self.config.diversity_coef * diversity_bonus
        self._last_score = new_score
        mask = self._mask()
        done = self.budget_reached or not mask.any()
        return self._state(), reward, done, mask

    def _diversity_bonus(self, action: int) -> float:
        """§5.1's diversity regularizer: a [0, 1] term added to the objective.

        1 − the maximum cosine similarity between the chosen action's
        embedding and the already-selected ones — picking a group unlike
        everything selected so far earns the full bonus. Inactive (and not
        computed) when ``config.diversity_coef`` is 0, the paper's default
        after their ablation found it hurt the main metric.
        """
        if self.config.diversity_coef == 0.0:
            return 0.0
        chosen_indices = np.flatnonzero(self.selected)
        if len(chosen_indices) == 0:
            return 1.0
        embeddings = self.action_space.embeddings
        similarities = embeddings[chosen_indices] @ embeddings[action]
        return float(np.clip(1.0 - np.max(similarities), 0.0, 1.0))


class DropOneEnvironment(_BaseTabularEnv):
    """Drop-one: fixed-size set, swap-based refinement, delta rewards."""

    def reset(self) -> tuple[np.ndarray, np.ndarray]:
        self._reset_selection()
        self.batch = self._sample_batch()
        self._steps = 0
        # Random initialization to the budget (the paper notes this phase
        # is "crucial and unstable" — we reproduce the plain variant).
        order = self.rng.permutation(self.n_actions)
        for action in order:
            if self.budget_reached:
                break
            self._apply_add(int(action))
        self._last_score = self.tracker.batch_score(self.batch)
        return self._state(), self._mask()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, np.ndarray]:
        if self.selected[action]:
            raise ValueError(f"action {action} already selected (mask violation)")
        selected_indices = np.flatnonzero(self.selected)
        if len(selected_indices) > 0:
            victim = int(self.rng.choice(selected_indices))
            self._apply_remove(victim)
        self._apply_add(action)
        new_score = self.tracker.batch_score(self.batch)
        reward = new_score - self._last_score
        self._last_score = new_score
        self._steps += 1
        mask = self._mask()
        done = self._steps >= self.config.drp_horizon or not mask.any()
        return self._state(), reward, done, mask


class HybridEnvironment(_BaseTabularEnv):
    """DRP+GSL: GSL growth phase followed by DRP refinement."""

    def reset(self) -> tuple[np.ndarray, np.ndarray]:
        self._reset_selection()
        self.batch = self._sample_batch()
        self._swap_steps = 0
        self._last_score = 0.0
        return self._state(), self._mask()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, np.ndarray]:
        if self.selected[action]:
            raise ValueError(f"action {action} already selected (mask violation)")
        growing = not self.budget_reached
        if growing:
            self._apply_add(action)
            reward = self.tracker.batch_score(self.batch)
            self._last_score = reward
        else:
            selected_indices = np.flatnonzero(self.selected)
            if len(selected_indices) > 0:
                victim = int(self.rng.choice(selected_indices))
                self._apply_remove(victim)
            self._apply_add(action)
            new_score = self.tracker.batch_score(self.batch)
            reward = new_score - self._last_score
            self._last_score = new_score
            self._swap_steps += 1
        mask = self._mask()
        done = (
            self._swap_steps >= max(1, self.config.drp_horizon // 2)
            or not mask.any()
        )
        return self._state(), reward, done, mask


_ENVIRONMENTS = {
    "gsl": GSLEnvironment,
    "drp": DropOneEnvironment,
    "drp+gsl": HybridEnvironment,
}


def make_environment(
    name: str,
    action_space: ActionSpace,
    coverages: Sequence[QueryCoverage],
    config: ASQPConfig,
    rng: np.random.Generator,
    query_batch: Optional[Sequence[int]] = None,
):
    """Factory by ablation name ("gsl", "drp", "drp+gsl")."""
    try:
        cls = _ENVIRONMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; choose from {sorted(_ENVIRONMENTS)}"
        ) from None
    return cls(action_space, coverages, config, rng, query_batch=query_batch)
