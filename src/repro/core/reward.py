"""Reward computation: incremental Eq. 1 coverage tracking.

Executing the workload on the candidate subset at every RL step would be
ruinously slow (the paper calls this out as challenge C2). Instead, the
pre-processing phase executes each query representative once on the full
database and records, for every result row, the *provenance requirement* —
the set of ``(table, base row id)`` tuples that must all be present in the
approximation set for that row to appear in ``q(S)``.

:class:`CoverageTracker` then maintains, incrementally as tuples enter and
leave the candidate set, how many result rows of each query are covered,
and evaluates the Eq. 1 score over any batch of queries in O(1) per query.

The tracker stores the key → result-row incidence as a **CSR structure**:
all distinct keys are interned to dense ids, the incidence lists are
flattened into one contiguous ``int64`` array indexed by per-key offsets,
and the per-row missing counts / per-query covered counts / per-key
refcounts live in flat numpy arrays. Batch :meth:`add_keys` /
:meth:`remove_keys` updates are vectorized (``np.unique`` over the batch,
``np.add.at`` scatter into the missing counts), an episode
:meth:`reset` is an array copy, and :meth:`score_with_keys` restores the
prior state from an array snapshot instead of replaying refcounts one key
at a time. The pre-vectorization dict-of-lists implementation is retained
below as :class:`DictCoverageTracker` for differential testing and
benchmarking.

Granularity note: the tracker counts *distinct provenance rows* (one per
combination of contributing base tuples). Executed scoring
(:func:`repro.core.metric.score`) counts distinct *projected* result
tuples; projections can collapse several provenance rows into one
projected tuple, shrinking both the numerator and the ``min(F, |q(T)|)``
denominator. The two therefore coincide exactly for SELECT-* queries and
remain a close, monotone training proxy otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import Iterable, Optional, Sequence

import numpy as np

from .approximation import TupleKey

#: Batches up to this size take the scalar per-key path; the numpy batch
#: machinery only pays off once a few keys amortize its fixed cost.
_SCALAR_BATCH_LIMIT = 4


@dataclass
class QueryCoverage:
    """Provenance requirements of one query representative.

    Parameters
    ----------
    name:
        Query label (for diagnostics).
    weight:
        The workload weight ``w(q)``.
    denominator:
        ``min(F, |q(T)|)`` from Eq. 1 (``|q(T)|`` on the *full* database).
    requirements:
        One entry per distinct result row: the tuple keys that must all be
        in the approximation set for the row to survive.
    """

    name: str
    weight: float
    denominator: int
    requirements: list[tuple[TupleKey, ...]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return self.denominator <= 0


class CoverageTracker:
    """Incremental covered-row counts for a set of query representatives.

    CSR incidence layout (built once in ``__init__``):

    * ``_key_index`` interns every distinct tuple key to a dense id;
    * ``_inc_rows[_inc_offsets[k]:_inc_offsets[k + 1]]`` lists the global
      result-row ids requiring key ``k`` (rows are numbered contiguously
      across queries; ``_row_query`` maps a row back to its query);
    * ``_missing[row]`` counts the row's absent required keys,
      ``_covered[q]`` the rows of query ``q`` with nothing missing, and
      ``_present[k]`` the refcount of key ``k`` (DRP removes tuples).
    """

    def __init__(self, coverages: Sequence[QueryCoverage]) -> None:
        self.coverages = list(coverages)
        n_queries = len(self.coverages)
        row_counts = np.asarray(
            [len(c.requirements) for c in self.coverages], dtype=np.int64
        )
        self._row_query = np.repeat(np.arange(n_queries, dtype=np.int64), row_counts)
        row_offsets = np.concatenate([[0], np.cumsum(row_counts)])

        self._key_index: dict[TupleKey, int] = {}
        inc_keys: list[int] = []
        inc_rows: list[int] = []
        initial_missing = np.zeros(int(row_offsets[-1]), dtype=np.int64)
        for q, coverage in enumerate(self.coverages):
            base = int(row_offsets[q])
            for r, requirement in enumerate(coverage.requirements):
                distinct = set(requirement)
                initial_missing[base + r] = len(distinct)
                for key in distinct:
                    kid = self._key_index.setdefault(key, len(self._key_index))
                    inc_keys.append(kid)
                    inc_rows.append(base + r)

        n_keys = len(self._key_index)
        inc_key_arr = np.asarray(inc_keys, dtype=np.int64)
        inc_row_arr = np.asarray(inc_rows, dtype=np.int64)
        order = np.argsort(inc_key_arr, kind="stable")
        self._inc_rows = inc_row_arr[order]
        self._inc_offsets = np.concatenate(
            [[0], np.cumsum(np.bincount(inc_key_arr, minlength=n_keys))]
        ).astype(np.int64)

        self._initial_missing = initial_missing
        self._missing = initial_missing.copy()
        # Rows with no requirements (shouldn't happen) start covered.
        self._initial_covered = np.bincount(
            self._row_query[initial_missing == 0], minlength=n_queries
        ).astype(np.int64)
        self._covered = self._initial_covered.copy()
        self._present = np.zeros(n_keys, dtype=np.int64)

        self._weights = np.asarray([c.weight for c in self.coverages], dtype=np.float64)
        denoms = np.asarray([c.denominator for c in self.coverages], dtype=np.float64)
        self._empty = denoms <= 0
        self._safe_denoms = np.where(self._empty, 1.0, denoms)

    # -------------------------------------------------------------- #
    @property
    def n_queries(self) -> int:
        return len(self.coverages)

    def covered_counts(self) -> np.ndarray:
        return self._covered.copy()

    def reset(self) -> None:
        """Remove all present tuples (start of an episode)."""
        self._present[:] = 0
        self._missing[:] = self._initial_missing
        self._covered[:] = self._initial_covered

    # -------------------------------------------------------------- #
    def _key_id(self, key: TupleKey) -> Optional[int]:
        return self._key_index.get(key)

    def add_key(self, key: TupleKey) -> None:
        kid = self._key_index.get(key)
        if kid is None:
            return
        count = self._present[kid]
        self._present[kid] = count + 1
        if count > 0:
            return  # already present; no coverage change
        missing, covered, row_query = self._missing, self._covered, self._row_query
        for pos in range(self._inc_offsets[kid], self._inc_offsets[kid + 1]):
            row = self._inc_rows[pos]
            missing[row] -= 1
            if missing[row] == 0:
                covered[row_query[row]] += 1

    def remove_key(self, key: TupleKey) -> None:
        kid = self._key_index.get(key)
        if kid is None:
            return
        count = self._present[kid]
        if count == 0:
            return
        self._present[kid] = count - 1
        if count > 1:
            return
        missing, covered, row_query = self._missing, self._covered, self._row_query
        for pos in range(self._inc_offsets[kid], self._inc_offsets[kid + 1]):
            row = self._inc_rows[pos]
            if missing[row] == 0:
                covered[row_query[row]] -= 1
            missing[row] += 1

    # -------------------------------------------------------------- #
    def _batch_key_counts(self, keys: list) -> tuple[np.ndarray, np.ndarray]:
        """Distinct interned key ids of a batch with their multiplicities.

        Unknown keys are dropped. The C-level ``map(dict.get, keys,
        repeat(-1))`` avoids a Python frame per key; everything after is
        sized by the batch, not the key universe.
        """
        ids = np.fromiter(
            map(self._key_index.get, keys, repeat(-1)),
            dtype=np.int64,
            count=len(keys),
        )
        uniq, counts = np.unique(ids, return_counts=True)
        if uniq.size and uniq[0] == -1:
            uniq, counts = uniq[1:], counts[1:]
        return uniq, counts

    def _incidence_rows(self, key_ids: np.ndarray) -> np.ndarray:
        """Concatenated incidence rows of a batch of key ids (CSR gather)."""
        starts = self._inc_offsets[key_ids]
        counts = self._inc_offsets[key_ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        group_starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, counts)
        return self._inc_rows[np.repeat(starts, counts) + within]

    def add_keys(self, keys: Iterable[TupleKey]) -> None:
        keys = keys if isinstance(keys, list) else list(keys)
        if len(keys) <= _SCALAR_BATCH_LIMIT:
            for key in keys:
                self.add_key(key)
            return
        uniq, counts = self._batch_key_counts(keys)
        if uniq.size == 0:
            return
        newly = uniq[self._present[uniq] == 0]
        self._present[uniq] += counts
        if newly.size == 0:
            return
        rows = self._incidence_rows(newly)
        if rows.size == 0:
            return
        # Several newly-present keys may hit the same row: subtract the
        # per-row hit counts, then find touched rows that reached zero
        # (all were > 0 before, since a row requiring an absent key has
        # missing >= 1). Large batches take the dense bincount path —
        # ufunc.at's per-element scatter is far slower than full-array ops
        # once the hit list is a sizeable fraction of the rows.
        if rows.size * 4 >= self._missing.size:
            row_hits = np.bincount(rows, minlength=self._missing.size)
            self._missing -= row_hits
            became_covered = np.flatnonzero((self._missing == 0) & (row_hits > 0))
        else:
            np.subtract.at(self._missing, rows, 1)
            touched = np.unique(rows)
            became_covered = touched[self._missing[touched] == 0]
        if became_covered.size:
            self._covered += np.bincount(
                self._row_query[became_covered], minlength=self.n_queries
            )

    def remove_keys(self, keys: Iterable[TupleKey]) -> None:
        keys = keys if isinstance(keys, list) else list(keys)
        if len(keys) <= _SCALAR_BATCH_LIMIT:
            for key in keys:
                self.remove_key(key)
            return
        uniq, counts = self._batch_key_counts(keys)
        if uniq.size == 0:
            return
        present = self._present[uniq]
        vanishing = uniq[(present > 0) & (counts >= present)]
        self._present[uniq] = np.maximum(present - counts, 0)
        if vanishing.size == 0:
            return
        rows = self._incidence_rows(vanishing)
        if rows.size == 0:
            return
        if rows.size * 4 >= self._missing.size:
            row_hits = np.bincount(rows, minlength=self._missing.size)
            was_covered = np.flatnonzero((self._missing == 0) & (row_hits > 0))
            self._missing += row_hits
        else:
            touched = np.unique(rows)
            was_covered = touched[self._missing[touched] == 0]
            np.add.at(self._missing, rows, 1)
        if was_covered.size:
            self._covered -= np.bincount(
                self._row_query[was_covered], minlength=self.n_queries
            )

    # -------------------------------------------------------------- #
    def query_score(self, q: int) -> float:
        """Eq. 1 term of one query under the current set."""
        coverage = self.coverages[q]
        if coverage.is_empty:
            return 1.0
        return min(1.0, float(self._covered[q]) / coverage.denominator)

    def batch_score(self, query_indices: Optional[Sequence[int]] = None) -> float:
        """Weighted Eq. 1 score over a batch (default: all queries).

        Weights are renormalized within the batch so a batch reward is on
        the same [0, 1] scale as the full score.
        """
        if query_indices is None:
            scores = np.where(
                self._empty, 1.0, np.minimum(1.0, self._covered / self._safe_denoms)
            )
            weight_sum = float(self._weights.sum())
            total = float(self._weights @ scores)
        else:
            idx = np.asarray(query_indices, dtype=np.int64)
            scores = np.where(
                self._empty[idx],
                1.0,
                np.minimum(1.0, self._covered[idx] / self._safe_denoms[idx]),
            )
            weight_sum = float(self._weights[idx].sum())
            total = float(self._weights[idx] @ scores)
        return total / weight_sum if weight_sum > 0 else 0.0

    def probe_add_score(self, keys: Iterable[TupleKey]) -> float:
        """Score after hypothetically adding ``keys``; state is unchanged.

        Used by the greedy baseline's marginal-gain scan: add, score, and
        roll back in one incidence-bounded round trip (no snapshot copy).
        """
        keys = list(keys)
        self.add_keys(keys)
        value = self.batch_score()
        self.remove_keys(keys)
        return value

    def score_with_keys(self, keys: Iterable[TupleKey]) -> float:
        """Score of an arbitrary key set without disturbing current state.

        Used by the greedy / brute-force baselines, which probe many
        candidate sets. The prior state is restored from an O(1)-ops
        array snapshot rather than replaying every refcount.
        """
        snapshot = (self._present.copy(), self._missing.copy(), self._covered.copy())
        self.reset()
        self.add_keys(keys)
        value = self.batch_score()
        self._present, self._missing, self._covered = snapshot
        return value


class DictCoverageTracker:
    """Pre-vectorization dict-of-lists tracker (reference implementation).

    Retained verbatim for the differential/property tests in
    ``tests/test_kernels.py`` and as the baseline side of
    ``benchmarks/bench_kernels.py``. Semantics are identical to
    :class:`CoverageTracker`; only the data layout differs.
    """

    def __init__(self, coverages: Sequence[QueryCoverage]) -> None:
        self.coverages = list(coverages)
        # missing[q][r]: how many distinct required keys of row r are absent.
        self._missing: list[np.ndarray] = []
        self._covered = np.zeros(len(coverages), dtype=np.int64)
        # key -> list of (query index, row index) it participates in.
        self._incidence: dict[TupleKey, list[tuple[int, int]]] = {}
        # Multiset of present keys (DRP removes tuples, so we refcount).
        self._present: dict[TupleKey, int] = {}

        for q, coverage in enumerate(self.coverages):
            missing = np.zeros(len(coverage.requirements), dtype=np.int64)
            for r, requirement in enumerate(coverage.requirements):
                distinct = set(requirement)
                missing[r] = len(distinct)
                for key in distinct:
                    self._incidence.setdefault(key, []).append((q, r))
            self._missing.append(missing)
            self._covered[q] = int(np.sum(missing == 0))

    @property
    def n_queries(self) -> int:
        return len(self.coverages)

    def covered_counts(self) -> np.ndarray:
        return self._covered.copy()

    def reset(self) -> None:
        self._present.clear()
        for q, coverage in enumerate(self.coverages):
            missing = self._missing[q]
            for r, requirement in enumerate(coverage.requirements):
                missing[r] = len(set(requirement))
            self._covered[q] = int(np.sum(missing == 0))

    def add_key(self, key: TupleKey) -> None:
        count = self._present.get(key, 0)
        self._present[key] = count + 1
        if count > 0:
            return
        for q, r in self._incidence.get(key, ()):
            missing = self._missing[q]
            missing[r] -= 1
            if missing[r] == 0:
                self._covered[q] += 1

    def remove_key(self, key: TupleKey) -> None:
        count = self._present.get(key, 0)
        if count == 0:
            return
        if count > 1:
            self._present[key] = count - 1
            return
        del self._present[key]
        for q, r in self._incidence.get(key, ()):
            missing = self._missing[q]
            if missing[r] == 0:
                self._covered[q] -= 1
            missing[r] += 1

    def add_keys(self, keys: Iterable[TupleKey]) -> None:
        for key in keys:
            self.add_key(key)

    def remove_keys(self, keys: Iterable[TupleKey]) -> None:
        for key in keys:
            self.remove_key(key)

    def query_score(self, q: int) -> float:
        coverage = self.coverages[q]
        if coverage.is_empty:
            return 1.0
        return min(1.0, float(self._covered[q]) / coverage.denominator)

    def batch_score(self, query_indices: Optional[Sequence[int]] = None) -> float:
        if query_indices is None:
            query_indices = range(self.n_queries)
        total = 0.0
        weight_sum = 0.0
        for q in query_indices:
            weight = self.coverages[q].weight
            total += weight * self.query_score(q)
            weight_sum += weight
        return total / weight_sum if weight_sum > 0 else 0.0

    def score_with_keys(self, keys: Iterable[TupleKey]) -> float:
        snapshot_present = dict(self._present)
        self.reset()
        self.add_keys(keys)
        value = self.batch_score()
        self.reset()
        for key, count in snapshot_present.items():
            for _ in range(count):
                self.add_key(key)
        return value
