"""Reward computation: incremental Eq. 1 coverage tracking.

Executing the workload on the candidate subset at every RL step would be
ruinously slow (the paper calls this out as challenge C2). Instead, the
pre-processing phase executes each query representative once on the full
database and records, for every result row, the *provenance requirement* —
the set of ``(table, base row id)`` tuples that must all be present in the
approximation set for that row to appear in ``q(S)``.

:class:`CoverageTracker` then maintains, incrementally as tuples enter and
leave the candidate set, how many result rows of each query are covered,
and evaluates the Eq. 1 score over any batch of queries in O(1) per query.

Granularity note: the tracker counts *distinct provenance rows* (one per
combination of contributing base tuples). Executed scoring
(:func:`repro.core.metric.score`) counts distinct *projected* result
tuples; projections can collapse several provenance rows into one
projected tuple, shrinking both the numerator and the ``min(F, |q(T)|)``
denominator. The two therefore coincide exactly for SELECT-* queries and
remain a close, monotone training proxy otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from .approximation import TupleKey


@dataclass
class QueryCoverage:
    """Provenance requirements of one query representative.

    Parameters
    ----------
    name:
        Query label (for diagnostics).
    weight:
        The workload weight ``w(q)``.
    denominator:
        ``min(F, |q(T)|)`` from Eq. 1 (``|q(T)|`` on the *full* database).
    requirements:
        One entry per distinct result row: the tuple keys that must all be
        in the approximation set for the row to survive.
    """

    name: str
    weight: float
    denominator: int
    requirements: list[tuple[TupleKey, ...]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return self.denominator <= 0


class CoverageTracker:
    """Incremental covered-row counts for a set of query representatives."""

    def __init__(self, coverages: Sequence[QueryCoverage]) -> None:
        self.coverages = list(coverages)
        # missing[q][r]: how many distinct required keys of row r are absent.
        self._missing: list[np.ndarray] = []
        self._covered = np.zeros(len(coverages), dtype=np.int64)
        # key -> list of (query index, row index) it participates in.
        self._incidence: dict[TupleKey, list[tuple[int, int]]] = {}
        # Multiset of present keys (DRP removes tuples, so we refcount).
        self._present: dict[TupleKey, int] = {}

        for q, coverage in enumerate(self.coverages):
            missing = np.zeros(len(coverage.requirements), dtype=np.int64)
            for r, requirement in enumerate(coverage.requirements):
                distinct = set(requirement)
                missing[r] = len(distinct)
                for key in distinct:
                    self._incidence.setdefault(key, []).append((q, r))
            self._missing.append(missing)
            # Rows with no requirements (shouldn't happen) start covered.
            self._covered[q] = int(np.sum(missing == 0))

    # -------------------------------------------------------------- #
    @property
    def n_queries(self) -> int:
        return len(self.coverages)

    def covered_counts(self) -> np.ndarray:
        return self._covered.copy()

    def reset(self) -> None:
        """Remove all present tuples (start of an episode)."""
        for key in list(self._present):
            count = self._present.pop(key)
            del count
        for q, coverage in enumerate(self.coverages):
            missing = self._missing[q]
            for r, requirement in enumerate(coverage.requirements):
                missing[r] = len(set(requirement))
            self._covered[q] = int(np.sum(missing == 0))

    # -------------------------------------------------------------- #
    def add_key(self, key: TupleKey) -> None:
        count = self._present.get(key, 0)
        self._present[key] = count + 1
        if count > 0:
            return  # already present; no coverage change
        for q, r in self._incidence.get(key, ()):
            missing = self._missing[q]
            missing[r] -= 1
            if missing[r] == 0:
                self._covered[q] += 1

    def remove_key(self, key: TupleKey) -> None:
        count = self._present.get(key, 0)
        if count == 0:
            return
        if count > 1:
            self._present[key] = count - 1
            return
        del self._present[key]
        for q, r in self._incidence.get(key, ()):
            missing = self._missing[q]
            if missing[r] == 0:
                self._covered[q] -= 1
            missing[r] += 1

    def add_keys(self, keys: Iterable[TupleKey]) -> None:
        for key in keys:
            self.add_key(key)

    def remove_keys(self, keys: Iterable[TupleKey]) -> None:
        for key in keys:
            self.remove_key(key)

    # -------------------------------------------------------------- #
    def query_score(self, q: int) -> float:
        """Eq. 1 term of one query under the current set."""
        coverage = self.coverages[q]
        if coverage.is_empty:
            return 1.0
        return min(1.0, float(self._covered[q]) / coverage.denominator)

    def batch_score(self, query_indices: Optional[Sequence[int]] = None) -> float:
        """Weighted Eq. 1 score over a batch (default: all queries).

        Weights are renormalized within the batch so a batch reward is on
        the same [0, 1] scale as the full score.
        """
        if query_indices is None:
            query_indices = range(self.n_queries)
        total = 0.0
        weight_sum = 0.0
        for q in query_indices:
            weight = self.coverages[q].weight
            total += weight * self.query_score(q)
            weight_sum += weight
        return total / weight_sum if weight_sum > 0 else 0.0

    def score_with_keys(self, keys: Iterable[TupleKey]) -> float:
        """Score of an arbitrary key set without disturbing current state.

        Used by the greedy / brute-force baselines, which probe many
        candidate sets.
        """
        snapshot_present = dict(self._present)
        self.reset()
        self.add_keys(keys)
        value = self.batch_score()
        self.reset()
        for key, count in snapshot_present.items():
            for _ in range(count):
                self.add_key(key)
        return value
