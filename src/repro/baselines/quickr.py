"""QUIK: QuickR-style lazy plan-keyed sampling (paper §6.1 baseline 9).

QuickR [Kandula et al. 2016] keeps "a catalog of plans and samples and an
algorithm for choosing the right samples at the right time": samples are
built lazily as queries arrive, keyed by the query's plan signature
(tables + predicate columns), and reused for queries with a matching
signature. Here the training workload drives catalog construction: each
distinct signature gets an equal slice of the budget, filled with a
uniform sample of its queries' provenance rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..core.reward import QueryCoverage
from ..db.database import Database
from ..db.expressions import conjuncts
from ..db.query import SPJQuery
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector


def plan_signature(query: SPJQuery) -> tuple:
    """The catalog key: tables joined + columns filtered."""
    predicate_columns = tuple(
        sorted({ref for part in conjuncts(query.predicate) for ref in part.columns()})
    )
    return (tuple(sorted(query.tables)), predicate_columns)


class QuickRBaseline(SubsetSelector):
    """Signature-keyed sample catalog built from the training workload."""

    name = "QUIK"

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        spj = workload.spj_only()
        coverages = self.workload_coverages(db, workload, frame_size, rng)

        # Group queries by plan signature (the catalog).
        catalog: dict[tuple, list[QueryCoverage]] = {}
        for query, coverage in zip(spj.queries, coverages):
            catalog.setdefault(plan_signature(query), []).append(coverage)

        approx = ApproximationSet()
        n_signatures = max(1, len(catalog))
        slice_budget = max(1, k // n_signatures)
        for signature in sorted(catalog, key=str):
            rows: list[tuple] = []
            seen = set()
            for coverage in catalog[signature]:
                for requirement in coverage.requirements:
                    if requirement not in seen:
                        seen.add(requirement)
                        rows.append(requirement)
            if not rows:
                continue
            order = rng.permutation(len(rows))
            slice_used = 0
            for row_index in order:
                requirement = rows[row_index]
                new_keys = [key for key in requirement if key not in approx]
                if not new_keys:
                    continue
                if approx.total_size() + len(new_keys) > k:
                    break
                approx.add_keys(new_keys)
                slice_used += len(new_keys)
                if slice_used >= slice_budget:
                    break
            if approx.total_size() >= k:
                break

        return self.finish(
            self.name, db, approx, started, n_signatures=len(catalog)
        )
