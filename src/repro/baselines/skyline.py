"""SKY: progressive skyline summarization (paper §6.1 baseline 7).

Based on [Papadias et al., "Progressive Skyline Computation"], extended
per the paper: "While a skyline is typically used with numerical values,
we extended it to handle categorical columns by comparing two values based
on their frequency." Each table contributes its skyline layers (onion
peeling) until its proportional share of the budget fills: layer 1 is the
classic maximal set under Pareto dominance, layer 2 the skyline of the
rest, and so on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.database import Database
from ..db.statistics import compute_table_stats
from ..db.table import Table
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector

#: Cap on rows considered per table (skyline is O(n^2) per layer).
MAX_POOL_PER_TABLE = 1200


def _dominance_matrix_features(table: Table, rng: np.random.Generator) -> np.ndarray:
    """Rows-as-feature-vectors where *larger is better* on every axis.

    Numeric columns are used as-is; categorical columns map each value to
    its frequency (popular values dominate rare ones), per the paper's
    extension.
    """
    stats = compute_table_stats(table)
    features: list[np.ndarray] = []
    for column in table.schema.columns:
        array = table.column(column.name)
        if column.ctype.is_numeric:
            features.append(np.asarray(array, dtype=np.float64))
        else:
            cat = stats.categorical[column.name]
            features.append(
                np.asarray(
                    [cat.frequencies.get(str(v), 0) for v in array],
                    dtype=np.float64,
                )
            )
    return np.column_stack(features)


def skyline_layers(features: np.ndarray, max_rows: int) -> list[int]:
    """Onion-peeling skyline: indices of successive skyline layers.

    Returns at most ``max_rows`` indices, whole layers first.
    """
    n = len(features)
    remaining = list(range(n))
    selected: list[int] = []
    while remaining and len(selected) < max_rows:
        layer: list[int] = []
        for i in remaining:
            dominated = False
            for j in remaining:
                if i == j:
                    continue
                if np.all(features[j] >= features[i]) and np.any(
                    features[j] > features[i]
                ):
                    dominated = True
                    break
            if not dominated:
                layer.append(i)
        if not layer:  # all ties; take what's left
            layer = list(remaining)
        selected.extend(layer)
        remaining = [i for i in remaining if i not in set(layer)]
    return selected[:max_rows]


class SkylineBaseline(SubsetSelector):
    """Per-table progressive skylines under the frequency extension."""

    name = "SKY"

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        total_rows = max(1, db.total_rows())
        approx = ApproximationSet()
        for table in db:
            if len(table) == 0:
                continue
            share = max(1, int(round(k * len(table) / total_rows)))
            share = min(share, len(table), k - approx.total_size())
            if share <= 0:
                continue
            if len(table) > MAX_POOL_PER_TABLE:
                pool = np.sort(
                    rng.choice(len(table), size=MAX_POOL_PER_TABLE, replace=False)
                )
                sub = table.take(pool)
            else:
                sub = table
            features = _dominance_matrix_features(sub, rng)
            chosen = skyline_layers(features, share)
            approx.add_keys((table.name, int(sub.row_ids[i])) for i in chosen)
            if approx.total_size() >= k:
                break
        return self.finish(self.name, db, approx, started)
