"""gAQP: VAE-based approximate aggregate processing (paper §6.4, Fig. 12).

[Thirumuruganathan et al. 2020] train deep generative models offline, draw
a sample of synthetic tuples at query time, run the aggregate on the
sample, and rescale: COUNT and SUM answers multiply by the inverse
sampling fraction; AVG is scale-free. This wrapper reuses the
:class:`~repro.baselines.vae.TabularVAE` generator with a memory budget
expressed as a fraction of the data (the paper uses 1%).
"""

from __future__ import annotations

import numpy as np

from ..obs.clock import perf_counter
from ..core.metric import aggregate_relative_error
from ..db.database import Database
from ..db.query import AggregateQuery
from ..db.table import Table
from .vae import TabularCodec, TabularVAE


class GAQPEstimator:
    """Generative AQP engine: train once, sample + rescale per query."""

    def __init__(
        self,
        db: Database,
        memory_fraction: float = 0.01,
        epochs: int = 25,
        latent_dim: int = 8,
        max_training_rows: int = 4000,
        seed: int = 0,
    ) -> None:
        if not 0 < memory_fraction <= 1:
            raise ValueError(
                f"memory fraction must be in (0, 1], got {memory_fraction}"
            )
        self.db = db
        self.memory_fraction = memory_fraction
        self.rng = np.random.default_rng(seed)
        self.models: dict[str, TabularVAE] = {}
        self.setup_seconds = 0.0

        started = perf_counter()
        for table in db:
            if len(table) == 0:
                continue
            training_table = table
            if len(table) > max_training_rows:
                picks = np.sort(
                    self.rng.choice(len(table), size=max_training_rows, replace=False)
                )
                training_table = table.take(picks)
            codec = TabularCodec(training_table)
            vae = TabularVAE(
                codec, latent_dim=latent_dim, seed=int(self.rng.integers(0, 2**31))
            )
            vae.train(codec.encode(), epochs=epochs)
            self.models[table.name] = vae
        self.setup_seconds = perf_counter() - started

    # -------------------------------------------------------------- #
    def _sample_database(self) -> tuple[Database, float]:
        """Synthetic sample database + the sampling fraction used."""
        tables: list[Table] = []
        for table in self.db:
            model = self.models.get(table.name)
            if model is None or len(table) == 0:
                tables.append(table)
                continue
            share = max(1, int(round(len(table) * self.memory_fraction)))
            tables.append(Table(table.schema, model.generate(share, self.rng)))
        return Database(tables, name=f"{self.db.name}:gaqp"), self.memory_fraction

    def answer_error(self, query: AggregateQuery) -> float:
        """Relative error (Eq. 2) of the sampled answer vs the truth."""
        sample_db, fraction = self._sample_database()
        return aggregate_relative_error(
            self.db, sample_db, query, scale_counts=1.0 / fraction
        )
