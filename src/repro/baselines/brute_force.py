"""BRT: time-budgeted exhaustive subset search (paper §6.1 baseline 2).

"An algorithm that exhaustively checks different combinations of k tuples
to find the optimal solution ... a time constraint of 48 hours is imposed
... We then return the best subset found during this process."

The candidate pool is the union of the workload's provenance rows (any
tuple outside it contributes nothing to Eq. 1, so restricting the pool
only helps BRT). Combinations are enumerated in a randomized order and the
best-scoring one within the budget is kept — exactly the paper's protocol,
scaled from 48 hours to a configurable number of seconds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..core.reward import CoverageTracker
from ..db.database import Database
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector

DEFAULT_TIME_BUDGET = 10.0


class BruteForce(SubsetSelector):
    """Randomized exhaustive search over k-tuple combinations."""

    name = "BRT"

    def __init__(self, default_time_budget: float = DEFAULT_TIME_BUDGET) -> None:
        self.default_time_budget = default_time_budget

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        budget = time_budget if time_budget is not None else self.default_time_budget
        coverages = self.workload_coverages(db, workload, frame_size, rng)
        tracker = CoverageTracker(coverages)

        # The paper's BRT "exhaustively checks different combinations of k
        # tuples": candidates are individual tuples of the database, with no
        # knowledge of join structure. (Giving it joinable provenance rows
        # would make it a different — and far stronger — algorithm.)
        all_keys = self.all_tuple_keys(db)
        size = min(k, len(all_keys))

        best_keys: list = []
        best_score = -1.0
        n_combinations = 0
        while perf_counter() - started < budget:
            picks = rng.choice(len(all_keys), size=size, replace=False)
            candidate = [all_keys[p] for p in picks]
            # reset() is an array copy and add_keys() one vectorized batch
            # update, so each probed combination costs O(incidence) work.
            tracker.reset()
            tracker.add_keys(candidate)
            value = tracker.batch_score()
            n_combinations += 1
            if value > best_score:
                best_score = value
                best_keys = list(candidate)

        approx = ApproximationSet.from_keys(best_keys)
        completed = False  # by construction the budget expired, as in the paper
        return self.finish(
            self.name,
            db,
            approx,
            started,
            completed=completed,
            combinations_tried=n_combinations,
            best_training_score=best_score,
        )
