"""CACH: simulated database buffer cache (paper §6.1 baseline 5).

"Simulates a database's cache by preserving tuples from the last executed
query ... evicting the least recently used (LRU) pages to accommodate new
ones." Per the paper's footnote, the realistic case interleaves queries
from users with different interests, so the training workload is replayed
in a shuffled order (several passes) before the cache contents are frozen
into the subset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.cache import LRUTupleCache
from ..db.database import Database
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector


class CacheBaseline(SubsetSelector):
    """LRU tuple cache warmed by a shuffled replay of the workload."""

    name = "CACH"

    def __init__(self, n_passes: int = 1) -> None:
        if n_passes < 1:
            raise ValueError(f"need at least one replay pass, got {n_passes}")
        self.n_passes = n_passes

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        coverages = self.workload_coverages(db, workload, frame_size, rng)
        cache = LRUTupleCache(capacity=k)

        for _ in range(self.n_passes):
            order = rng.permutation(len(coverages))
            for q in order:
                for requirement in coverages[q].requirements:
                    cache.touch_many(requirement)

        approx = ApproximationSet.from_mapping(cache.contents())
        return self.finish(
            self.name,
            db,
            approx,
            started,
            hit_rate=cache.hit_rate,
            evictions=cache.evictions,
        )
