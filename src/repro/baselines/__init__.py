"""The §6 baselines: naive, database-domain, and generative comparators."""

from .base import SelectionResult, SubsetSelector
from .brute_force import BruteForce
from .caching import CacheBaseline
from .deepdb import SPNModel, UnsupportedQueryError
from .gaqp import GAQPEstimator
from .greedy import GreedySelection
from .qrd import QueryResultDiversification
from .quickr import QuickRBaseline, plan_signature
from .random_sampling import RandomSampling
from .skyline import SkylineBaseline, skyline_layers
from .top_queried import TopQueriedTuples
from .vae import TabularCodec, TabularVAE, VAEBaseline
from .verdict import VerdictBaseline

_REGISTRY = {
    "RAN": RandomSampling,
    "BRT": BruteForce,
    "GRE": GreedySelection,
    "TOP": TopQueriedTuples,
    "CACH": CacheBaseline,
    "QRD": QueryResultDiversification,
    "SKY": SkylineBaseline,
    "VERD": VerdictBaseline,
    "QUIK": QuickRBaseline,
    "VAE": VAEBaseline,
}


def baseline_names() -> list[str]:
    """All registered subset-selector baseline names."""
    return list(_REGISTRY)


def make_baseline(name: str, **kwargs) -> SubsetSelector:
    """Instantiate a baseline by its paper short-name (e.g. "RAN", "GRE")."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BruteForce",
    "CacheBaseline",
    "GAQPEstimator",
    "GreedySelection",
    "QueryResultDiversification",
    "QuickRBaseline",
    "RandomSampling",
    "SPNModel",
    "SelectionResult",
    "SkylineBaseline",
    "SubsetSelector",
    "TabularCodec",
    "TabularVAE",
    "TopQueriedTuples",
    "UnsupportedQueryError",
    "VAEBaseline",
    "VerdictBaseline",
    "baseline_names",
    "make_baseline",
    "plan_signature",
    "skyline_layers",
]
