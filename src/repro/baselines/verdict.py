"""VERD: VerdictDB-style offline scrambles (paper §6.1 baseline 8).

VerdictDB [Park et al. 2018] pre-builds *scrambles* — stratified samples
with retained inclusion probabilities — then rewrites queries against the
scrambles and rescales the answers. Here each table gets a stratified
sample (stratifying on its highest-entropy categorical column, falling
back to uniform) sized proportionally to the table; the per-table sampling
fraction is kept so aggregate answers can be Horvitz–Thompson rescaled
(used by the Fig. 12 comparison).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.database import Database
from ..db.sampling import variational_subsample
from ..db.statistics import compute_table_stats
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector


def _best_stratification_column(table) -> Optional[str]:
    """Categorical column with the most even, multi-valued distribution."""
    stats = compute_table_stats(table)
    best_column = None
    best_entropy = 0.0
    for name, cat in stats.categorical.items():
        if cat.n_distinct < 2 or cat.n_distinct > 500:
            continue
        counts = np.asarray(list(cat.frequencies.values()), dtype=np.float64)
        p = counts / counts.sum()
        entropy = float(-(p * np.log(p)).sum())
        if entropy > best_entropy:
            best_entropy = entropy
            best_column = name
    return best_column


class VerdictBaseline(SubsetSelector):
    """Per-table stratified scrambles with retained sampling fractions."""

    name = "VERD"

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        total_rows = max(1, db.total_rows())
        approx = ApproximationSet()
        fractions: dict[str, float] = {}
        for table in db:
            if len(table) == 0:
                continue
            share = max(1, int(round(k * len(table) / total_rows)))
            share = min(share, len(table), k - approx.total_size())
            if share <= 0:
                continue
            column = _best_stratification_column(table)
            if column is None:
                positions = rng.choice(len(table), size=share, replace=False)
            else:
                keys = [str(v) for v in table.column(column)]
                sample = variational_subsample(keys, share, rng)
                positions = sample.positions[:share]
            approx.add_keys(
                (table.name, int(table.row_ids[p])) for p in positions
            )
            fractions[table.name] = len(positions) / len(table)
            if approx.total_size() >= k:
                break
        return self.finish(
            self.name, db, approx, started, sampling_fractions=fractions
        )
