"""Common interface for the §6 baselines.

Every baseline consumes the same inputs ASQP-RL does — the database, the
training workload, the memory budget ``k`` and frame size ``F`` — and
produces a *queryable database* (plus, for subset-based methods, the
underlying :class:`~repro.core.approximation.ApproximationSet`). The
generative VAE baseline produces synthetic tuples rather than a subset,
which is why the result carries a database and not just row ids.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..core.preprocess import build_coverage
from ..core.reward import QueryCoverage
from ..db.database import Database
from ..datasets.workloads import Workload


@dataclass
class SelectionResult:
    """Outcome of a baseline's setup phase."""

    name: str
    database: Database
    approximation: Optional[ApproximationSet] = None
    setup_seconds: float = 0.0
    completed: bool = True          # False when the time budget expired
    extra: dict = field(default_factory=dict)


class SubsetSelector(abc.ABC):
    """A baseline that prepares a queryable stand-in for the database."""

    #: Short name used in the benchmark tables (e.g. "RAN", "GRE").
    name: str = "BASE"

    @abc.abstractmethod
    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        """Run the setup phase and return the queryable result.

        ``time_budget`` is in seconds; methods that search (GRE, BRT)
        return their best-so-far when it expires, with ``completed=False``.
        """

    # Helpers shared by workload-driven selectors ----------------------
    @staticmethod
    def workload_coverages(
        db: Database,
        workload: Workload,
        frame_size: int,
        rng: np.random.Generator,
    ) -> list[QueryCoverage]:
        """Execute the training workload once, as ASQP's preprocessing does."""
        spj = workload.spj_only()
        return [
            build_coverage(db, query, float(spj.weights[i]), frame_size, rng)
            for i, query in enumerate(spj.queries)
        ]

    @staticmethod
    def all_tuple_keys(db: Database) -> list[tuple[str, int]]:
        keys: list[tuple[str, int]] = []
        for table in db:
            keys.extend((table.name, int(rid)) for rid in table.row_ids)
        return keys

    @staticmethod
    def finish(
        name: str,
        db: Database,
        approximation: ApproximationSet,
        started: float,
        completed: bool = True,
        **extra,
    ) -> SelectionResult:
        return SelectionResult(
            name=name,
            database=approximation.to_database(db, name=f"{db.name}:{name.lower()}"),
            approximation=approximation,
            setup_seconds=perf_counter() - started,
            completed=completed,
            extra=dict(extra),
        )
