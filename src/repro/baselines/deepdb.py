"""DeepDB: Sum-Product Network AQP (paper §6.4, Fig. 12).

A from-scratch relational SPN in the style of [Hilprecht et al. 2019]:

* **Sum nodes** split *rows* into clusters (k-means on standardized
  features) and mix children by cluster weight;
* **Product nodes** split *columns* into (approximately) independent
  groups, tested by pairwise correlation / Cramér-style association;
* **Leaves** hold one column each: equi-width histograms with per-bin sums
  for numerics, frequency tables for categoricals.

The network answers COUNT / SUM / AVG (with GROUP BY) under conjunctive
predicates over one table: ``COUNT ≈ N·P(pred)``, ``SUM ≈ N·E[X·1(pred)]``,
``AVG = SUM/COUNT``, group-by iterates the group column's vocabulary and
conditions on each value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..db.expressions import Between, Comparison, Expression, InSet, conjuncts
from ..db.query import AggFunc, AggregateQuery
from ..db.table import Table

MIN_ROWS_TO_SPLIT = 256
INDEPENDENCE_THRESHOLD = 0.25
N_HISTOGRAM_BINS = 32


# ------------------------------------------------------------------ #
# predicate conditions per column
# ------------------------------------------------------------------ #
@dataclass
class Interval:
    """Numeric condition: closed interval (±inf for one-sided)."""

    low: float = -np.inf
    high: float = np.inf

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.low, other.low), min(self.high, other.high))

    @property
    def empty(self) -> bool:
        return self.low > self.high


@dataclass
class ValueSet:
    """Categorical condition: allowed values."""

    values: frozenset

    def intersect(self, other: "ValueSet") -> "ValueSet":
        return ValueSet(self.values & other.values)

    @property
    def empty(self) -> bool:
        return not self.values


Condition = Union[Interval, ValueSet]


class UnsupportedQueryError(ValueError):
    """Raised for queries outside the SPN's single-table conjunctive class."""


def conditions_from_predicate(
    predicate: Expression, column_names: Sequence[str], table_name: str
) -> dict[str, Condition]:
    """Translate a conjunctive predicate into per-column conditions."""
    conditions: dict[str, Condition] = {}

    def merge(column: str, condition: Condition) -> None:
        existing = conditions.get(column)
        if existing is None:
            conditions[column] = condition
        elif type(existing) is type(condition):
            conditions[column] = existing.intersect(condition)  # type: ignore[arg-type]
        else:
            raise UnsupportedQueryError(
                f"mixed numeric/categorical conditions on {column!r}"
            )

    for part in conjuncts(predicate):
        refs = part.columns()
        if len(refs) != 1:
            raise UnsupportedQueryError(f"multi-column conjunct: {part.to_sql()}")
        ref = refs[0]
        column = ref.split(".", 1)[1] if "." in ref else ref
        if column not in column_names:
            raise UnsupportedQueryError(f"unknown column {column!r}")
        if isinstance(part, Between):
            merge(column, Interval(float(part.low), float(part.high)))
        elif isinstance(part, Comparison):
            value = part.value
            if isinstance(value, str):
                if part.op == "=":
                    merge(column, ValueSet(frozenset({value})))
                else:
                    raise UnsupportedQueryError(
                        f"categorical operator {part.op!r} unsupported"
                    )
            else:
                v = float(value)
                if part.op == "=":
                    merge(column, Interval(v, v))
                elif part.op in (">", ">="):
                    merge(column, Interval(low=v))
                elif part.op in ("<", "<="):
                    merge(column, Interval(high=v))
                else:
                    raise UnsupportedQueryError(f"operator {part.op!r} unsupported")
        elif isinstance(part, InSet):
            if all(isinstance(v, str) for v in part.values):
                merge(column, ValueSet(frozenset(part.values)))
            else:
                raise UnsupportedQueryError("numeric IN-sets unsupported")
        else:
            raise UnsupportedQueryError(f"conjunct {part.to_sql()!r} unsupported")
    return conditions


# ------------------------------------------------------------------ #
# SPN nodes
# ------------------------------------------------------------------ #
class _Node:
    scope: frozenset  # column names this node models

    def prob_and_expectation(
        self, conditions: dict[str, Condition], target: Optional[str]
    ) -> tuple[float, float]:
        """Return ``(P(conditions), E[target · 1(conditions)])``.

        When ``target`` is None the expectation slot returns 0.
        """
        raise NotImplementedError


class _NumericLeaf(_Node):
    #: Columns with at most this many distinct values keep an exact
    #: frequency table, so point conditions (equality / integer group-by)
    #: have real probability mass instead of zero measure.
    MAX_DISCRETE = 256

    def __init__(self, column: str, values: np.ndarray) -> None:
        self.scope = frozenset({column})
        self.column = column
        low, high = float(values.min()), float(values.max())
        if high <= low:
            high = low + 1.0
        self.edges = np.linspace(low, high, N_HISTOGRAM_BINS + 1)
        which = np.clip(
            np.digitize(values, self.edges) - 1, 0, N_HISTOGRAM_BINS - 1
        )
        self.counts = np.bincount(which, minlength=N_HISTOGRAM_BINS).astype(float)
        self.sums = np.bincount(
            which, weights=values, minlength=N_HISTOGRAM_BINS
        ).astype(float)
        self.total = float(self.counts.sum())
        distinct = np.unique(values)
        self.point_masses: Optional[dict[float, float]] = None
        if len(distinct) <= self.MAX_DISCRETE:
            self.point_masses = {}
            for value in distinct:
                self.point_masses[float(value)] = float(np.sum(values == value))

    def prob_and_expectation(self, conditions, target):
        condition = conditions.get(self.column)
        if condition is None:
            p = 1.0
            expectation = float(self.sums.sum()) / self.total
        elif isinstance(condition, ValueSet):
            raise UnsupportedQueryError(
                f"categorical condition on numeric column {self.column!r}"
            )
        elif condition.empty:
            p, expectation = 0.0, 0.0
        elif (
            condition.low == condition.high
            and self.point_masses is not None
        ):
            mass = self.point_masses.get(float(condition.low), 0.0)
            p = mass / self.total
            expectation = float(condition.low) * p
        else:
            p_mass = 0.0
            s_mass = 0.0
            for b in range(N_HISTOGRAM_BINS):
                lo, hi = self.edges[b], self.edges[b + 1]
                width = hi - lo
                overlap = max(0.0, min(hi, condition.high) - max(lo, condition.low))
                if b == N_HISTOGRAM_BINS - 1 and condition.high >= hi:
                    overlap = max(0.0, hi - max(lo, condition.low))
                if width <= 0 or overlap <= 0:
                    # Point bins / point intervals: include fully if inside.
                    if width <= 0 and condition.low <= lo <= condition.high:
                        p_mass += self.counts[b]
                        s_mass += self.sums[b]
                    continue
                fraction = min(1.0, overlap / width)
                p_mass += self.counts[b] * fraction
                s_mass += self.sums[b] * fraction
            p = p_mass / self.total
            expectation = s_mass / self.total
        if target == self.column:
            return p, expectation
        return p, 0.0


class _CategoricalLeaf(_Node):
    def __init__(self, column: str, values: Sequence[str]) -> None:
        self.scope = frozenset({column})
        self.column = column
        self.frequencies: dict[str, int] = {}
        for value in values:
            key = str(value)
            self.frequencies[key] = self.frequencies.get(key, 0) + 1
        self.total = float(sum(self.frequencies.values()))

    def prob_and_expectation(self, conditions, target):
        condition = conditions.get(self.column)
        if condition is None:
            return 1.0, 0.0
        if isinstance(condition, Interval):
            raise UnsupportedQueryError(
                f"numeric condition on categorical column {self.column!r}"
            )
        mass = sum(self.frequencies.get(v, 0) for v in condition.values)
        return mass / self.total, 0.0

    def vocabulary(self) -> list[str]:
        return sorted(self.frequencies)


class _ProductNode(_Node):
    def __init__(self, children: list[_Node]) -> None:
        self.children = children
        self.scope = frozenset().union(*(c.scope for c in children))

    def prob_and_expectation(self, conditions, target):
        p_total = 1.0
        expectation_factor = 0.0
        target_seen = False
        for child in self.children:
            p, expectation = child.prob_and_expectation(
                {k: v for k, v in conditions.items() if k in child.scope},
                target if target in child.scope else None,
            )
            p_total *= p
            if target is not None and target in child.scope:
                target_seen = True
                # E[X·1(all)] = E[X·1(child conds)] · Π other P
                expectation_factor = expectation
                p_of_target_child = p
        if target is None or not target_seen:
            return p_total, 0.0
        if p_of_target_child > 0:
            others = p_total / p_of_target_child
        else:
            others = 0.0
        return p_total, expectation_factor * others


class _SumNode(_Node):
    def __init__(self, children: list[_Node], weights: np.ndarray) -> None:
        self.children = children
        self.weights = weights / weights.sum()
        self.scope = children[0].scope

    def prob_and_expectation(self, conditions, target):
        p_total = 0.0
        e_total = 0.0
        for child, weight in zip(self.children, self.weights):
            p, expectation = child.prob_and_expectation(conditions, target)
            p_total += weight * p
            e_total += weight * expectation
        return p_total, e_total


# ------------------------------------------------------------------ #
# structure learning
# ------------------------------------------------------------------ #
def _numeric_matrix(table: Table, columns: list[str], positions: np.ndarray) -> np.ndarray:
    """Standardized numeric codes for clustering (categoricals hashed)."""
    features = []
    for name in columns:
        array = table.column(name)[positions]
        if table.schema.column(name).ctype.is_numeric:
            values = np.asarray(array, dtype=np.float64)
        else:
            values = np.asarray([hash(str(v)) % 997 for v in array], dtype=np.float64)
        std = values.std()
        features.append((values - values.mean()) / (std if std > 1e-9 else 1.0))
    return np.column_stack(features)


def _association(a: np.ndarray, b: np.ndarray) -> float:
    """|correlation| of the standardized codes (0 when degenerate)."""
    if a.std() < 1e-9 or b.std() < 1e-9:
        return 0.0
    return float(abs(np.corrcoef(a, b)[0, 1]))


def _independent_groups(codes: np.ndarray, columns: list[str]) -> list[list[int]]:
    """Connected components of the pairwise-association graph."""
    n = len(columns)
    adjacency = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if _association(codes[:, i], codes[:, j]) > INDEPENDENCE_THRESHOLD:
                adjacency[i][j] = adjacency[j][i] = True
    groups: list[list[int]] = []
    unseen = set(range(n))
    while unseen:
        start = min(unseen)
        stack = [start]
        component = []
        while stack:
            node = stack.pop()
            if node not in unseen:
                continue
            unseen.discard(node)
            component.append(node)
            stack.extend(j for j in range(n) if adjacency[node][j] and j in unseen)
        groups.append(sorted(component))
    return groups


def _build_leaf(table: Table, column: str, positions: np.ndarray) -> _Node:
    array = table.column(column)[positions]
    if table.schema.column(column).ctype.is_numeric:
        return _NumericLeaf(column, np.asarray(array, dtype=np.float64))
    return _CategoricalLeaf(column, [str(v) for v in array])


def _build_node(
    table: Table,
    columns: list[str],
    positions: np.ndarray,
    rng: np.random.Generator,
    depth: int,
) -> _Node:
    if len(columns) == 1:
        return _build_leaf(table, columns[0], positions)
    codes = _numeric_matrix(table, columns, positions)
    if depth < 6:
        groups = _independent_groups(codes, columns)
        if len(groups) > 1:
            children = [
                _build_node(table, [columns[i] for i in group], positions, rng, depth + 1)
                for group in groups
            ]
            return _ProductNode(children)
    if len(positions) >= MIN_ROWS_TO_SPLIT and depth < 6:
        from ..embedding.cluster import kmeans

        result = kmeans(codes, 2, rng, n_iter=15, n_restarts=1)
        sizes = [len(result.members(c)) for c in range(2)]
        if min(sizes) >= max(16, len(positions) // 20):
            children = []
            weights = []
            for c in range(2):
                members = result.members(c)
                children.append(
                    _build_node(table, columns, positions[members], rng, depth + 1)
                )
                weights.append(float(len(members)))
            return _SumNode(children, np.asarray(weights))
    # Fallback: treat columns as independent.
    return _ProductNode([_build_leaf(table, c, positions) for c in columns])


class SPNModel:
    """A DeepDB-style SPN over one table."""

    def __init__(self, table: Table, seed: int = 0, max_rows: int = 20_000) -> None:
        self.table = table
        rng = np.random.default_rng(seed)
        positions = np.arange(len(table))
        if len(table) > max_rows:
            positions = np.sort(rng.choice(len(table), size=max_rows, replace=False))
        self.n_rows = len(table)
        self.columns = list(table.schema.column_names)
        self.root = _build_node(table, self.columns, positions, rng, depth=0)
        self._vocab_cache: dict[str, list[str]] = {}

    # -------------------------------------------------------------- #
    def _group_vocabulary(self, column: str) -> list[str]:
        if column not in self._vocab_cache:
            array = self.table.column(column)
            if self.table.schema.column(column).ctype.is_numeric:
                values = sorted({float(v) for v in array})
                self._vocab_cache[column] = values  # type: ignore[assignment]
            else:
                self._vocab_cache[column] = sorted({str(v) for v in array})
        return self._vocab_cache[column]

    def answer(self, query: AggregateQuery) -> dict[tuple, dict[str, float]]:
        """Estimate the aggregate answer in the same shape as the executor."""
        if len(query.tables) != 1 or query.joins:
            raise UnsupportedQueryError("SPN answers single-table queries only")
        if query.tables[0] != self.table.name:
            raise UnsupportedQueryError(
                f"model is for {self.table.name!r}, query targets {query.tables[0]!r}"
            )
        base_conditions = conditions_from_predicate(
            query.predicate, self.columns, self.table.name
        )
        group_columns = [
            ref.split(".", 1)[1] if "." in ref else ref for ref in query.group_by
        ]

        def estimate(conditions: dict[str, Condition]) -> dict[str, float]:
            row: dict[str, float] = {}
            for spec in query.aggregates:
                name = spec.output_name()
                target = None
                if spec.column is not None:
                    target = (
                        spec.column.split(".", 1)[1]
                        if "." in spec.column
                        else spec.column
                    )
                p, expectation = self.root.prob_and_expectation(conditions, target)
                if spec.func is AggFunc.COUNT:
                    row[name] = self.n_rows * p
                elif spec.func is AggFunc.SUM:
                    row[name] = self.n_rows * expectation
                elif spec.func is AggFunc.AVG:
                    row[name] = (expectation / p) if p > 1e-12 else float("nan")
                else:
                    raise UnsupportedQueryError(
                        f"SPN does not estimate {spec.func.value}"
                    )
            return row

        if not group_columns:
            return {(): estimate(base_conditions)}
        if len(group_columns) > 1:
            raise UnsupportedQueryError("SPN group-by supports one column")
        group_column = group_columns[0]
        results: dict[tuple, dict[str, float]] = {}
        is_numeric = self.table.schema.column(group_column).ctype.is_numeric
        for value in self._group_vocabulary(group_column):
            conditions = dict(base_conditions)
            if is_numeric:
                extra: Condition = Interval(float(value), float(value))
            else:
                extra = ValueSet(frozenset({str(value)}))
            existing = conditions.get(group_column)
            if existing is not None:
                if type(existing) is not type(extra):
                    continue
                extra = existing.intersect(extra)  # type: ignore[arg-type]
                if extra.empty:
                    continue
            conditions[group_column] = extra
            row = estimate(conditions)
            count_like = [
                v for k, v in row.items() if k.startswith(("count", "sum"))
            ]
            if count_like and all(abs(v) < 0.5 for v in count_like):
                continue  # prune empty groups like DeepDB does
            key_value: object = value
            if is_numeric and float(value).is_integer():
                key_value = int(value)
            results[(key_value,)] = row
        return results
