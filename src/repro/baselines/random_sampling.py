"""RAN: uniform random tuple sampling (paper §6.1 naive baseline 1)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.database import Database
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector


class RandomSampling(SubsetSelector):
    """Pick ``k`` tuples uniformly at random across all tables.

    The allocation across tables is proportional to table size, which is
    what sampling from the concatenated tuple stream gives.
    """

    name = "RAN"

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        keys = self.all_tuple_keys(db)
        size = min(k, len(keys))
        picks = rng.choice(len(keys), size=size, replace=False)
        approx = ApproximationSet.from_keys(keys[p] for p in picks)
        return self.finish(self.name, db, approx, started)
