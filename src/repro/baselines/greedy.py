"""GRE: greedy marginal-gain selection (paper §6.1 baseline 3).

"In each iteration, take the row that achieves the largest marginal gain
with respect to the metric, eliminate this row, and repeat. The running
time is limited to 48 hours."

Candidates are provenance rows (joinable groups) from the executed
workload. Each iteration scans all remaining candidates for the best
marginal Eq. 1 gain — the O(n·k) scan is why the paper's GRE blows its
budget on IMDB; with a small time budget the same failure reproduces here
(``completed=False`` and a partial set).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..core.reward import CoverageTracker
from ..db.database import Database
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector

DEFAULT_TIME_BUDGET = 20.0


class GreedySelection(SubsetSelector):
    """Exact greedy over provenance-row candidates, time budgeted."""

    name = "GRE"

    def __init__(self, default_time_budget: float = DEFAULT_TIME_BUDGET) -> None:
        self.default_time_budget = default_time_budget

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        budget = time_budget if time_budget is not None else self.default_time_budget
        coverages = self.workload_coverages(db, workload, frame_size, rng)
        tracker = CoverageTracker(coverages)

        units: list[tuple] = []
        seen = set()
        for coverage in coverages:
            for requirement in coverage.requirements:
                if requirement not in seen:
                    seen.add(requirement)
                    units.append(requirement)

        approx = ApproximationSet()
        remaining = set(range(len(units)))
        completed = True
        current_score = tracker.batch_score()
        while approx.total_size() < k and remaining:
            if perf_counter() - started > budget:
                completed = False
                break
            best_unit = -1
            best_gain = -np.inf
            for unit_index in remaining:
                requirement = units[unit_index]
                new_keys = [key for key in requirement if key not in approx]
                if approx.total_size() + len(new_keys) > k:
                    continue
                # Probe: batch add, measure, roll back (one CSR round trip).
                gain = tracker.probe_add_score(requirement) - current_score
                cost = max(1, len(new_keys))
                normalized = gain / cost
                if normalized > best_gain:
                    best_gain = normalized
                    best_unit = unit_index
            if best_unit < 0:
                break
            requirement = units[best_unit]
            approx.add_keys(requirement)
            tracker.add_keys(requirement)
            current_score = tracker.batch_score()
            remaining.discard(best_unit)

        return self.finish(
            self.name,
            db,
            approx,
            started,
            completed=completed,
            training_score=current_score,
        )
