"""QRD: query-result diversification via k-medoids (paper §6.1 baseline 6).

Based on [Liu & Jagadish, "Using Trees to Depict a Forest"]: "an iterative
approach where it selects the medoids of clusters and then re-assigns the
data points to their nearest medoids." Tuples are embedded with the same
``Emb_tab`` model ASQP uses; each table gets a budget share proportional
to its size and contributes its cluster medoids. QRD needs no workload
(it uses inherent data patterns), which is why the paper also runs it in
the no-workload experiment (Fig. 6).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.database import Database
from ..db.statistics import compute_database_stats
from ..datasets.workloads import Workload
from ..embedding.cluster import kmedoids
from ..embedding.tuple_embed import TupleEmbedder
from .base import SelectionResult, SubsetSelector

#: Cap on the per-table pool that gets embedded and clustered.
MAX_POOL_PER_TABLE = 1500


class QueryResultDiversification(SubsetSelector):
    """Cluster-medoid representative selection per table."""

    name = "QRD"

    def __init__(self, embedding_dim: int = 32) -> None:
        self.embedding_dim = embedding_dim

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        stats = compute_database_stats(db)
        embedder = TupleEmbedder(dim=self.embedding_dim, stats=stats)
        total_rows = max(1, db.total_rows())

        approx = ApproximationSet()
        for table in db:
            if len(table) == 0:
                continue
            share = max(1, int(round(k * len(table) / total_rows)))
            share = min(share, len(table), k - approx.total_size())
            if share <= 0:
                continue
            if len(table) > MAX_POOL_PER_TABLE:
                pool = rng.choice(len(table), size=MAX_POOL_PER_TABLE, replace=False)
                pool = np.sort(pool)
            else:
                pool = np.arange(len(table))
            vectors = embedder.embed_table(table, pool)
            result = kmedoids(vectors, share, rng)
            chosen_positions = pool[result.medoids]
            approx.add_keys(
                (table.name, int(table.row_ids[p])) for p in chosen_positions
            )
            if approx.total_size() >= k:
                break

        return self.finish(self.name, db, approx, started)
