"""VAE: generative-model baseline (paper §6.1 baseline "VAE", and the
generator behind gAQP in §6.4).

A from-scratch numpy Variational Autoencoder for tabular data, in the
style of [Thirumuruganathan et al., ICDE 2020]: numeric columns are
standardized, categorical columns one-hot encoded (top-V vocabulary), the
encoder emits a Gaussian posterior, and the decoder reconstructs numeric
values (MSE) and categorical logits (cross-entropy) under a KL penalty.

Sampling the decoder produces *fictitious tuples*. The paper's finding —
generated tuples rarely satisfy selective non-aggregate filters and break
joins, so the VAE scores near zero on Eq. 1 — emerges naturally: key
columns are synthesized like any numeric column, so equality joins almost
never match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..db.database import Database
from ..db.schema import ColumnType
from ..db.table import Table
from ..datasets.workloads import Workload
from ..rl.nn import MLP, Adam, softmax
from .base import SelectionResult, SubsetSelector

MAX_VOCAB = 24
OTHER_TOKEN = "<other>"


@dataclass
class _ColumnCodec:
    """Encoding spec for one column."""

    name: str
    is_numeric: bool
    mean: float = 0.0
    std: float = 1.0
    integral: bool = False
    vocabulary: tuple[str, ...] = ()

    @property
    def width(self) -> int:
        return 1 if self.is_numeric else len(self.vocabulary)


class TabularCodec:
    """Bidirectional table ↔ real-matrix encoding."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.columns: list[_ColumnCodec] = []
        for column in table.schema.columns:
            array = table.column(column.name)
            if column.ctype.is_numeric:
                values = np.asarray(array, dtype=np.float64)
                std = float(values.std())
                self.columns.append(
                    _ColumnCodec(
                        name=column.name,
                        is_numeric=True,
                        mean=float(values.mean()),
                        std=std if std > 1e-9 else 1.0,
                        integral=column.ctype is ColumnType.INT,
                    )
                )
            else:
                frequencies: dict[str, int] = {}
                for value in array:
                    key = str(value)
                    frequencies[key] = frequencies.get(key, 0) + 1
                ranked = sorted(frequencies, key=lambda v: -frequencies[v])
                vocabulary = tuple(ranked[:MAX_VOCAB]) + (OTHER_TOKEN,)
                self.columns.append(
                    _ColumnCodec(
                        name=column.name, is_numeric=False, vocabulary=vocabulary
                    )
                )

    @property
    def width(self) -> int:
        return sum(codec.width for codec in self.columns)

    def encode(self) -> np.ndarray:
        n = len(self.table)
        matrix = np.zeros((n, self.width))
        offset = 0
        for codec in self.columns:
            array = self.table.column(codec.name)
            if codec.is_numeric:
                values = np.asarray(array, dtype=np.float64)
                matrix[:, offset] = (values - codec.mean) / codec.std
            else:
                index = {v: i for i, v in enumerate(codec.vocabulary)}
                other = index[OTHER_TOKEN]
                for row, value in enumerate(array):
                    matrix[row, offset + index.get(str(value), other)] = 1.0
            offset += codec.width
        return matrix

    def decode(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> dict[str, list]:
        """Decoder outputs → column values (categoricals sampled)."""
        columns: dict[str, list] = {}
        offset = 0
        for codec in self.columns:
            block = matrix[:, offset : offset + codec.width]
            if codec.is_numeric:
                values = block[:, 0] * codec.std + codec.mean
                if codec.integral:
                    columns[codec.name] = [int(round(v)) for v in values]
                else:
                    columns[codec.name] = [float(v) for v in values]
            else:
                probs = softmax(block, axis=1)
                picks = [
                    int(rng.choice(codec.width, p=p / p.sum())) for p in probs
                ]
                vocabulary = codec.vocabulary
                columns[codec.name] = [
                    vocabulary[p] if vocabulary[p] != OTHER_TOKEN else vocabulary[0]
                    for p in picks
                ]
            offset += codec.width
        return columns


class TabularVAE:
    """Gaussian-latent VAE with mixed reconstruction heads."""

    def __init__(
        self,
        codec: TabularCodec,
        latent_dim: int = 8,
        hidden: int = 48,
        learning_rate: float = 1e-3,
        kl_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.codec = codec
        self.latent_dim = latent_dim
        self.kl_weight = kl_weight
        rng = np.random.default_rng(seed)
        d = codec.width
        self.encoder = MLP([d, hidden, 2 * latent_dim], rng)
        self.decoder = MLP([latent_dim, hidden, d], rng)
        self.optimizer = Adam(
            self.encoder.parameters() + self.decoder.parameters(),
            learning_rate=learning_rate,
        )
        self._train_rng = rng

    # -------------------------------------------------------------- #
    def train(self, data: np.ndarray, epochs: int = 30, batch_size: int = 128) -> list[float]:
        """Minibatch training; returns per-epoch mean losses."""
        n = len(data)
        losses = []
        for _epoch in range(epochs):
            order = self._train_rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                batch = data[order[start : start + batch_size]]
                epoch_loss += self._step(batch)
                n_batches += 1
            losses.append(epoch_loss / max(1, n_batches))
        return losses

    def _step(self, batch: np.ndarray) -> float:
        m = len(batch)
        encoded, enc_cache = self.encoder.forward(batch)
        mu = encoded[:, : self.latent_dim]
        logvar = np.clip(encoded[:, self.latent_dim :], -8.0, 8.0)
        eps = self._train_rng.standard_normal(mu.shape)
        sigma = np.exp(0.5 * logvar)
        z = mu + sigma * eps
        output, dec_cache = self.decoder.forward(z)

        # Reconstruction loss + gradient per column block.
        grad_output = np.zeros_like(output)
        recon_loss = 0.0
        offset = 0
        for codec in self.codec.columns:
            block = slice(offset, offset + codec.width)
            if codec.is_numeric:
                diff = output[:, block] - batch[:, block]
                recon_loss += float(np.sum(diff ** 2))
                grad_output[:, block] = 2.0 * diff / m
            else:
                logits = output[:, block]
                probs = softmax(logits, axis=1)
                target = batch[:, block]
                recon_loss += float(
                    -np.sum(target * np.log(np.maximum(probs, 1e-12)))
                )
                grad_output[:, block] = (probs - target) / m
            offset += codec.width

        kl = -0.5 * float(np.sum(1.0 + logvar - mu ** 2 - np.exp(logvar)))
        loss = (recon_loss + self.kl_weight * kl) / m

        dec_wgrads, dec_bgrads = self.decoder.backward(dec_cache, grad_output)
        # Gradient into z, then into (mu, logvar).
        grad_z = self._grad_wrt_input(self.decoder, dec_cache, grad_output)
        grad_mu = grad_z + self.kl_weight * mu / m
        grad_logvar = (
            grad_z * eps * 0.5 * sigma
            + self.kl_weight * (-0.5) * (1.0 - np.exp(logvar)) / m
        )
        grad_encoded = np.concatenate([grad_mu, grad_logvar], axis=1)
        enc_wgrads, enc_bgrads = self.encoder.backward(enc_cache, grad_encoded)

        self.optimizer.step(
            enc_wgrads + enc_bgrads + dec_wgrads + dec_bgrads
        )
        return loss

    @staticmethod
    def _grad_wrt_input(net: MLP, cache, grad_output: np.ndarray) -> np.ndarray:
        """d loss / d network-input, replaying the backward chain."""
        grad = grad_output
        for i in reversed(range(net.n_layers)):
            if i != net.n_layers - 1:
                grad = grad * (1.0 - np.tanh(cache.pre_activations[i]) ** 2)
            grad = grad @ net.weights[i].T
        return grad

    # -------------------------------------------------------------- #
    def generate(self, n: int, rng: np.random.Generator) -> dict[str, list]:
        """Sample ``n`` synthetic tuples (column-value lists)."""
        z = rng.standard_normal((n, self.latent_dim))
        output = self.decoder.predict(z)
        return self.codec.decode(output, rng)


class VAEBaseline(SubsetSelector):
    """Per-table VAEs; the "subset" is a synthetic database of size ``k``."""

    name = "VAE"

    def __init__(
        self,
        epochs: int = 25,
        latent_dim: int = 8,
        max_training_rows: int = 4000,
    ) -> None:
        self.epochs = epochs
        self.latent_dim = latent_dim
        self.max_training_rows = max_training_rows
        self.models: dict[str, TabularVAE] = {}

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        total_rows = max(1, db.total_rows())
        synthetic_tables = []
        self.models.clear()
        for table in db:
            if len(table) == 0:
                synthetic_tables.append(table)
                continue
            training_table = table
            if len(table) > self.max_training_rows:
                picks = np.sort(
                    rng.choice(len(table), size=self.max_training_rows, replace=False)
                )
                training_table = table.take(picks)
            codec = TabularCodec(training_table)
            vae = TabularVAE(
                codec,
                latent_dim=self.latent_dim,
                seed=int(rng.integers(0, 2**31)),
            )
            vae.train(codec.encode(), epochs=self.epochs)
            self.models[table.name] = vae

            share = max(1, int(round(k * len(table) / total_rows)))
            columns = vae.generate(share, rng)
            synthetic_tables.append(Table(table.schema, columns))

        database = Database(synthetic_tables, name=f"{db.name}:vae")
        return SelectionResult(
            name=self.name,
            database=database,
            approximation=None,
            setup_seconds=perf_counter() - started,
            completed=True,
            extra={"generative": True},
        )

    # ---------------------------------------------------------------- #
    def regenerate(self, db: Database, k: int, rng: np.random.Generator) -> Database:
        """Fresh synthetic database from the trained models.

        gAQP-style engines sample the generator at query time; the Fig. 2
        "QueryAvg" column charges the VAE this regeneration cost per query
        batch.
        """
        if not self.models:
            raise RuntimeError("select() must run before regenerate()")
        total_rows = max(1, db.total_rows())
        tables = []
        for table in db:
            model = self.models.get(table.name)
            if model is None or len(table) == 0:
                tables.append(table)
                continue
            share = max(1, int(round(k * len(table) / total_rows)))
            tables.append(Table(table.schema, model.generate(share, rng)))
        return Database(tables, name=f"{db.name}:vae-regen")
