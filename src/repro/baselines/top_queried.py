"""TOP: most-queried tuples first (paper §6.1 baseline 4).

"Choose a random subset from each query answer. Choose queries that appear
in the most queries first, until reaching k tuples."

Tuples are ranked by how many workload queries their provenance
participates in; ties break by a random per-tuple draw (the "random subset
from each query answer" part), then tuples are taken in rank order until
the budget fills.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..obs.clock import perf_counter
from ..core.approximation import ApproximationSet
from ..db.database import Database
from ..datasets.workloads import Workload
from .base import SelectionResult, SubsetSelector


class TopQueriedTuples(SubsetSelector):
    """Frequency-ranked tuple selection."""

    name = "TOP"

    def select(
        self,
        db: Database,
        workload: Workload,
        k: int,
        frame_size: int,
        rng: np.random.Generator,
        time_budget: Optional[float] = None,
    ) -> SelectionResult:
        started = perf_counter()
        coverages = self.workload_coverages(db, workload, frame_size, rng)

        query_count: dict[tuple[str, int], int] = {}
        for coverage in coverages:
            touched: set[tuple[str, int]] = set()
            for requirement in coverage.requirements:
                touched.update(requirement)
            for key in touched:
                query_count[key] = query_count.get(key, 0) + 1

        keys = list(query_count)
        tie_break = rng.random(len(keys))
        ranked = sorted(
            range(len(keys)),
            key=lambda i: (-query_count[keys[i]], tie_break[i]),
        )
        approx = ApproximationSet.from_keys(keys[i] for i in ranked[:k])
        return self.finish(self.name, db, approx, started)
