"""ASQP-RL: learning approximation sets for exploratory non-aggregate queries.

A full reproduction of "Learning Approximation Sets for Exploratory
Queries" (SIGMOD 2024): an RL-trained mediator that selects a small,
queryable subset of a database (the *approximation set*) so complex SPJ
queries answer in seconds instead of minutes.

Quickstart::

    from repro import ASQPSystem, ASQPConfig, load_imdb

    bundle = load_imdb(scale=0.3)
    session = ASQPSystem(ASQPConfig(memory_budget=500)).fit(
        bundle.db, bundle.workload
    )
    outcome = session.query(bundle.workload.queries[0])
    rows, src = len(outcome), outcome.used_approximation  # answered from S?

Subpackages
-----------
``repro.db``        — in-memory relational engine (tables, SQL, joins, stats)
``repro.embedding`` — query/tuple embeddings, relaxation, clustering
``repro.rl``        — numpy actor-critic PPO substrate
``repro.core``      — the ASQP-RL system itself
``repro.baselines`` — the 12 comparison methods of the paper's §6
``repro.datasets``  — synthetic IMDB-JOB / MAS / FLIGHTS bundles
``repro.bench``     — experiment harness used by ``benchmarks/``
``repro.obs``       — tracing spans, metrics registry, telemetry streams
"""

from .core import (
    ASQPConfig,
    ASQPSession,
    ASQPSystem,
    ASQPTrainer,
    ApproximationSet,
    TrainedModel,
    aggregate_relative_error,
    generate_workload,
    load_model,
    relative_error,
    save_model,
    result_diversity,
    score,
)
from .datasets import DatasetBundle, Workload, load_flights, load_imdb, load_mas
from .db import Database, SPJQuery, Table, execute, execute_aggregate, sql

__version__ = "1.0.0"

__all__ = [
    "ASQPConfig",
    "ASQPSession",
    "ASQPSystem",
    "ASQPTrainer",
    "ApproximationSet",
    "Database",
    "DatasetBundle",
    "SPJQuery",
    "Table",
    "TrainedModel",
    "Workload",
    "__version__",
    "aggregate_relative_error",
    "execute",
    "execute_aggregate",
    "generate_workload",
    "load_flights",
    "load_model",
    "save_model",
    "load_imdb",
    "load_mas",
    "relative_error",
    "result_diversity",
    "score",
    "sql",
]
