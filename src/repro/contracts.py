"""Runtime shape/dtype/finiteness contracts — "strict mode".

The static linter (:mod:`repro.lint`) checks what the AST can see; this
module checks what only the running program can: array shapes flowing
into the vectorized kernels, dtypes of their outputs, and NaN/inf
poisoning of PPO training quantities (advantages, ratios, losses).

Strict mode follows the observability on/off pattern
(:mod:`repro.obs.runtime`): one process-global flag, and every contract
site is a *single attribute check and nothing else* when disabled — no
spec interpretation, no array touching, no allocation attributable to
this module (``tests/test_contracts.py`` asserts this with tracemalloc,
and ``benchmarks/bench_kernels.py --strict-check`` gates the kernel-path
overhead). Enable with the ``REPRO_STRICT=1`` environment variable, the
CLI ``--strict`` flag, or :func:`enable`/:func:`strict`.

Shape specs (bound per decorated parameter)::

    @shape_contract(arrays=[("n",)])          # sequence of 1-D arrays,
                                              # all the same length n
    @shape_contract(x=("n", "k"), returns=("n",))
    @dtype_contract(returns=("i", None))      # tuple: int64-kind, skip

* a tuple is a shape: ints match exactly, ``None`` matches any size, and
  a string is a dimension variable that must bind consistently across
  *all* specs of the call (this is how "equal-length key columns" and
  "probe_idx and build_idx have equal length" are expressed);
* a one-element list ``[spec]`` matches a sequence whose every element
  matches ``spec`` (sharing the variable bindings);
* for :func:`dtype_contract`, a spec string is the set of allowed numpy
  dtype *kinds* (``"i"`` signed ints, ``"f"`` floats, ``"if"`` either,
  ``"b"`` bool, ``"O"`` object); ``None`` skips that position.

Violations raise :class:`ContractError` naming the offending argument or
tensor.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import wraps
from inspect import signature
from typing import Iterator, Optional

import numpy as np


class ContractError(ValueError):
    """A runtime contract (shape, dtype, or finiteness) was violated."""


class StrictState:
    """Mutable process-global switch (attribute reads stay live)."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled


def _env_default() -> bool:
    return os.environ.get("REPRO_STRICT", "") not in ("", "0")


STATE = StrictState(_env_default())


def is_enabled() -> bool:
    return STATE.enabled


def enable() -> None:
    """Turn strict-mode contract checking on process-wide."""
    STATE.enabled = True


def disable() -> None:
    """Turn strict-mode contract checking off process-wide."""
    STATE.enabled = False


@contextmanager
def strict(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) strict mode, restoring on exit."""
    previous = STATE.enabled
    STATE.enabled = on
    try:
        yield
    finally:
        STATE.enabled = previous


# ------------------------------------------------------------------ #
# spec matching
# ------------------------------------------------------------------ #
def _check_shape(name: str, value, spec, bindings: dict) -> None:
    if spec is None:
        return
    if isinstance(spec, list):
        if len(spec) != 1:
            raise TypeError(f"sequence spec for {name!r} must be [inner]")
        try:
            elements = list(value)
        except TypeError:
            raise ContractError(
                f"{name}: expected a sequence of arrays, got "
                f"{type(value).__name__}"
            ) from None
        for i, element in enumerate(elements):
            _check_shape(f"{name}[{i}]", element, spec[0], bindings)
        return
    if isinstance(spec, int):
        ndim = np.asarray(value).ndim
        if ndim != spec:
            raise ContractError(
                f"{name}: expected a {spec}-D array, got {ndim}-D"
            )
        return
    if isinstance(spec, tuple) and any(
        isinstance(inner, (tuple, list)) for inner in spec
    ):
        # A tuple containing nested specs matches a tuple-valued result
        # position-by-position (None skips a position); a plain shape
        # tuple contains only int/str/None dims and falls through below.
        try:
            n_items = len(value)
        except TypeError:
            raise ContractError(
                f"{name}: expected a {len(spec)}-tuple, got "
                f"{type(value).__name__}"
            ) from None
        if n_items != len(spec):
            raise ContractError(
                f"{name}: expected a {len(spec)}-tuple, got {n_items} items"
            )
        for i, (element, inner) in enumerate(zip(value, spec)):
            _check_shape(f"{name}[{i}]", element, inner, bindings)
        return
    if isinstance(spec, tuple):
        shape = np.asarray(value).shape
        if len(shape) != len(spec):
            raise ContractError(
                f"{name}: expected {len(spec)} dimension(s) {spec}, "
                f"got shape {shape}"
            )
        for axis, (dim, expected) in enumerate(zip(shape, spec)):
            if expected is None:
                continue
            if isinstance(expected, str):
                bound = bindings.setdefault(expected, (dim, name, axis))
                if bound[0] != dim:
                    raise ContractError(
                        f"{name}: axis {axis} has size {dim} but dimension "
                        f"{expected!r} was bound to {bound[0]} by "
                        f"{bound[1]} axis {bound[2]}"
                    )
            elif dim != expected:
                raise ContractError(
                    f"{name}: axis {axis} has size {dim}, expected {expected}"
                )
        return
    raise TypeError(f"unsupported shape spec for {name!r}: {spec!r}")


def _check_dtype(name: str, value, spec) -> None:
    if spec is None:
        return
    if isinstance(spec, list):
        if len(spec) != 1:
            raise TypeError(f"sequence spec for {name!r} must be [inner]")
        for i, element in enumerate(value):
            _check_dtype(f"{name}[{i}]", element, spec[0])
        return
    if isinstance(spec, tuple):
        if len(value) != len(spec):
            raise ContractError(
                f"{name}: expected a {len(spec)}-tuple, got {len(value)} items"
            )
        for i, (element, inner) in enumerate(zip(value, spec)):
            _check_dtype(f"{name}[{i}]", element, inner)
        return
    if isinstance(spec, str):
        kind = np.asarray(value).dtype.kind
        if kind not in spec:
            raise ContractError(
                f"{name}: dtype kind {kind!r} not in allowed kinds {spec!r}"
            )
        return
    dtype = np.asarray(value).dtype
    if dtype != np.dtype(spec):
        raise ContractError(
            f"{name}: dtype {dtype} does not match required {np.dtype(spec)}"
        )


def _contract_decorator(specs: dict, check, contract_name: str):
    returns_spec = specs.pop("returns", None)

    def wrap(fn):
        params = signature(fn).parameters
        unknown = set(specs) - set(params)
        if unknown:
            raise TypeError(
                f"{contract_name} on {fn.__name__}: unknown parameter(s) "
                f"{sorted(unknown)}"
            )
        sig = signature(fn)

        @wraps(fn)
        def inner(*args, **kwargs):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            bindings: dict = {}
            bound = sig.bind(*args, **kwargs)
            for name, spec in specs.items():
                if name in bound.arguments:
                    check(
                        f"{fn.__name__}({name})",
                        bound.arguments[name],
                        spec,
                        bindings,
                    )
            out = fn(*args, **kwargs)
            if returns_spec is not None:
                check(f"{fn.__name__}(returns)", out, returns_spec, bindings)
            return out

        return inner

    return wrap


def shape_contract(**specs):
    """Check argument/return shapes when strict mode is on.

    Keyword arguments map parameter names to shape specs (see module
    docstring); ``returns=`` checks the return value. Dimension
    variables bind across every spec of one call.
    """
    return _contract_decorator(specs, _check_shape, "shape_contract")


def dtype_contract(**specs):
    """Check argument/return dtype kinds when strict mode is on."""

    def check(name, value, spec, _bindings):
        _check_dtype(name, value, spec)

    return _contract_decorator(specs, check, "dtype_contract")


# ------------------------------------------------------------------ #
# finiteness guards
# ------------------------------------------------------------------ #
def assert_finite(_context: Optional[str] = None, **tensors) -> None:
    """Raise :class:`ContractError` if any named tensor has NaN/inf.

    Call sites gate on ``STATE.enabled`` themselves so the disabled cost
    is one attribute check (building the kwargs dict is already more
    work than the contract allows)::

        if _STRICT.enabled:
            assert_finite("ppo.update", advantages=batch.advantages)

    ``_context`` prefixes the error message; scalars and arrays both
    work. The error names the first offending tensor and where the first
    bad element sits.
    """
    for name, tensor in tensors.items():
        array = np.asarray(tensor)
        if array.dtype.kind not in "fc":
            continue
        finite = np.isfinite(array)
        if finite.all():
            continue
        bad = array.size - int(finite.sum())
        label = f"{_context}: {name}" if _context else name
        if array.ndim == 0:
            raise ContractError(
                f"non-finite value in '{label}': {array[()]!r}"
            )
        first = int(np.flatnonzero(~finite.ravel())[0])
        raise ContractError(
            f"non-finite values in '{label}' ({bad} of {array.size} "
            f"elements, first at flat index {first})"
        )
